// Package reduce is the model-order-reduction pre-pass of the hot-path
// layer: before a stage path is handed to the QWM solver (or any lower
// degradation tier), long series RC wire runs on the path are collapsed into
// moment-matched equivalent short ladders, and — optionally — off-path
// wire-only leaf subtrees are lumped into a single capacitance at their
// attach node. The collapse preserves each run's total resistance, total
// capacitance and exit Elmore delay exactly (under any external load) and
// bounds the relative second-moment mismatch by the configured tolerance,
// following the long-chain equivalence scheme of arXiv 2508.13159 on top of
// the moment machinery in internal/awe.
//
// The pre-pass runs inside the delay-cache compute, downstream of the cache
// key: the key is always derived from the UNREDUCED stage content plus
// Config.Signature(), so reduced and unreduced evaluations of the same stage
// can never alias one cache entry (the PR 2 load-digest discipline).
package reduce

import (
	"strconv"

	"qwm/internal/awe"
	"qwm/internal/circuit"
)

// Config is the reduction knob set. The zero value disables the pre-pass
// entirely (Path then returns its inputs untouched).
type Config struct {
	// Enabled turns the pre-pass on.
	Enabled bool
	// TolPct is the per-run second-moment mismatch tolerance in percent
	// (|m2' − m2| / m1² × 100 — a fractional waveform-distortion proxy).
	// 0 means the 1 % default.
	TolPct float64
	// MinRun is the shortest series wire run (in segments) worth collapsing.
	// 0 means the default of 4; runs below it pass through unchanged.
	MinRun int
	// LumpLeaves additionally lumps off-path wire-only leaf subtrees into a
	// total capacitance at their on-path attach node. This is pessimistic
	// (QWM then sees capacitance the chain model previously ignored), so it
	// is a separate opt-in.
	LumpLeaves bool
}

func (c Config) withDefaults() Config {
	if c.TolPct <= 0 {
		c.TolPct = 1
	}
	if c.MinRun <= 0 {
		c.MinRun = 4
	}
	return c
}

// Signature canonically encodes the configuration for cache-key derivation.
// It is empty exactly when the pre-pass is disabled, so pre-existing cache
// keys (and the bit-for-bit-identical-when-off guarantee) are untouched; any
// enabled configuration yields a distinct non-empty suffix, so two Analyzers
// at different tolerances can never share a delay-cache entry.
func (c Config) Signature() string {
	if !c.Enabled {
		return ""
	}
	c = c.withDefaults()
	s := "|red:" + strconv.FormatFloat(c.TolPct, 'g', -1, 64) + ":" + strconv.Itoa(c.MinRun)
	if c.LumpLeaves {
		s += ":ll"
	}
	return s
}

// Stats reports what one Path call removed.
type Stats struct {
	// NodesRemoved counts circuit nodes eliminated (collapsed run interiors
	// plus lumped leaf-subtree nodes).
	NodesRemoved int
	// RunsCollapsed counts series wire runs actually replaced.
	RunsCollapsed int
	// LeavesLumped counts off-path subtree nodes folded into attach caps.
	LeavesLumped int
	// ErrMax is the largest reported second-moment mismatch estimate across
	// the collapsed runs (≤ TolPct/100 by construction).
	ErrMax float64
}

// Path applies the pre-pass to one stage path: eligible series wire runs are
// collapsed via awe.ReduceChain and the load map is rewritten to match (run
// interior entries removed, equivalent caps installed on synthetic nodes
// named "<exit>~r<i>"). When nothing is eligible the inputs are returned
// unchanged (same pointers), so callers can cheaply detect a no-op.
//
// The rewrite never mutates its inputs: st, p and loads are shared with the
// caller (and, through the per-Analyze outEval, with the other direction's
// evaluation), so the reduced path and load map are always fresh values.
func Path(st *circuit.Stage, p *circuit.Path, loads map[string]float64, cfg Config) (*circuit.Path, map[string]float64, Stats) {
	var stats Stats
	if !cfg.Enabled || st == nil || p == nil || len(p.Elems) == 0 {
		return p, loads, stats
	}
	cfg = cfg.withDefaults()

	// Per-node stage facts: how many wire edges touch each node, and whether
	// any device (non-wire) edge or gate does. A run interior must be a pure
	// degree-2 wire node — anything else (a branch point, a device terminal,
	// a gate net) pins the node in place.
	wireDeg := make(map[string]int)
	devTouch := make(map[string]bool)
	for _, e := range st.Edges {
		if e.Kind == circuit.KindWire {
			wireDeg[e.Src]++
			wireDeg[e.Snk]++
			continue
		}
		devTouch[e.Src] = true
		devTouch[e.Snk] = true
		if e.Gate != "" {
			devTouch[e.Gate] = true
		}
	}
	protected := map[string]bool{
		circuit.GroundNode: true, circuit.SupplyNode: true,
		p.Rail: true, p.Output: true,
	}
	for _, o := range st.Outputs {
		protected[o] = true
	}
	for _, in := range st.Inputs {
		protected[in] = true
	}
	collapsible := func(n string) bool {
		return wireDeg[n] == 2 && !devTouch[n] && !protected[n]
	}

	// Pass 1: find maximal eligible runs [i, j) of consecutive wire elements
	// whose every interior boundary node is collapsible.
	type run struct{ i, j int }
	var runs []run
	elems := p.Elems
	for i := 0; i < len(elems); {
		if elems[i].Edge.Kind != circuit.KindWire {
			i++
			continue
		}
		j := i + 1
		for j < len(elems) && elems[j].Edge.Kind == circuit.KindWire && collapsible(elems[j-1].Upper) {
			j++
		}
		if j-i >= cfg.MinRun {
			runs = append(runs, run{i, j})
		}
		i = j
	}
	if len(runs) == 0 && !cfg.LumpLeaves {
		return p, loads, stats
	}

	// Copy-on-write load map: copied only once an actual rewrite happens.
	// cow returns the writable map, copying the caller's on first use.
	newLoads, copied := loads, false
	cow := func() map[string]float64 {
		if !copied {
			m := make(map[string]float64, len(loads)+4)
			for k, v := range loads {
				m[k] = v
			}
			newLoads, copied = m, true
		}
		return newLoads
	}

	// Pass 2: rebuild the element list, replacing each collapsed run.
	newElems := make([]circuit.PathElem, 0, len(elems))
	changed := false
	next := 0
	for k := 0; k < len(elems); {
		if next < len(runs) && runs[next].i == k {
			i, j := runs[next].i, runs[next].j
			next++
			segs := make([]awe.ChainSeg, j-i)
			for q := i; q < j; q++ {
				segs[q-i].R = elems[q].Edge.R
				if q < j-1 { // exit node cap stays external to the run
					segs[q-i].C = newLoads[elems[q].Upper]
				}
			}
			exit := elems[j-1].Upper
			red, errEst := awe.ReduceChain(segs, newLoads[exit], cfg.TolPct/100)
			if len(red) >= len(segs) {
				newElems = append(newElems, elems[i:j]...)
				k = j
				continue
			}
			cow()
			for q := i; q < j-1; q++ {
				delete(newLoads, elems[q].Upper)
			}
			prev := elems[i].Lower
			for q, s := range red {
				upper := exit
				if q < len(red)-1 {
					upper = exit + "~r" + strconv.Itoa(q)
				}
				edge := &circuit.StageEdge{Kind: circuit.KindWire, Src: prev, Snk: upper, R: s.R}
				newElems = append(newElems, circuit.PathElem{Edge: edge, Lower: prev, Upper: upper})
				if s.C != 0 {
					newLoads[upper] += s.C
				}
				prev = upper
			}
			stats.RunsCollapsed++
			stats.NodesRemoved += (j - i) - len(red)
			if errEst > stats.ErrMax {
				stats.ErrMax = errEst
			}
			changed = true
			k = j
			continue
		}
		newElems = append(newElems, elems[k])
		k++
	}

	if cfg.LumpLeaves {
		changed = lumpLeaves(st, p, newElems, cow, devTouch, protected, &stats) || changed
	}
	if !changed {
		return p, loads, stats
	}
	return &circuit.Path{Rail: p.Rail, Output: p.Output, Elems: newElems}, newLoads, stats
}

// lumpLeaves folds every off-path, wire-only leaf subtree into a single
// capacitance at its on-path attach node: the subtree's total load moves to
// the attach point (pessimistic — all its capacitance now charges through
// the full upstream path) and the subtree's own load entries are dropped.
// Subtrees that touch a device, a protected net or a second non-lumpable
// node are left alone. Returns whether anything changed.
func lumpLeaves(st *circuit.Stage, p *circuit.Path, pathElems []circuit.PathElem, cow func() map[string]float64, devTouch, protected map[string]bool, stats *Stats) bool {
	onPath := map[string]bool{}
	if len(pathElems) > 0 {
		onPath[pathElems[0].Lower] = true
	}
	for _, pe := range pathElems {
		onPath[pe.Upper] = true
	}
	pathEdges := map[*circuit.StageEdge]bool{}
	for _, pe := range p.Elems {
		pathEdges[pe.Edge] = true
	}
	// Adjacency over off-path wire edges, in st.Edges order so traversal —
	// and therefore the float summation order of the lumped caps — is
	// positionally deterministic across structurally identical stages.
	adj := map[string][]*circuit.StageEdge{}
	for _, e := range st.Edges {
		if e.Kind != circuit.KindWire || pathEdges[e] {
			continue
		}
		adj[e.Src] = append(adj[e.Src], e)
		adj[e.Snk] = append(adj[e.Snk], e)
	}
	lumpable := func(n string) bool {
		return !devTouch[n] && !protected[n] && !onPath[n]
	}

	changed := false
	visited := map[string]bool{}
	// Walk attach candidates in path order for determinism.
	attachOrder := make([]string, 0, len(pathElems)+1)
	if len(pathElems) > 0 {
		attachOrder = append(attachOrder, pathElems[0].Lower)
	}
	for _, pe := range pathElems {
		attachOrder = append(attachOrder, pe.Upper)
	}
	for _, a := range attachOrder {
		for _, e := range adj[a] {
			start := e.Src
			if start == a {
				start = e.Snk
			}
			if visited[start] || !lumpable(start) {
				continue
			}
			// BFS the component; bail if it reconnects anywhere non-lumpable
			// other than the attach node.
			comp := []string{start}
			visited[start] = true
			ok := true
			for qi := 0; qi < len(comp); qi++ {
				for _, ee := range adj[comp[qi]] {
					for _, nb := range [2]string{ee.Src, ee.Snk} {
						if nb == comp[qi] || nb == a {
							continue
						}
						if !lumpable(nb) {
							ok = false
							continue
						}
						if !visited[nb] {
							visited[nb] = true
							comp = append(comp, nb)
						}
					}
				}
			}
			if !ok {
				continue
			}
			loads := cow()
			sum := 0.0
			any := false
			for _, n := range comp {
				if c, has := loads[n]; has {
					sum += c
					any = true
				}
			}
			if !any {
				continue
			}
			for _, n := range comp {
				delete(loads, n)
			}
			loads[a] += sum
			stats.LeavesLumped += len(comp)
			stats.NodesRemoved += len(comp)
			changed = true
		}
	}
	return changed
}
