package mc

import (
	"math"
	"testing"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/wave"
)

var (
	tech = mos.CMOSP35()
	lib  = devmodel.NewLibrary(tech)
)

func stackChain(t testing.TB, k int) *qwm.Chain {
	tbl, err := lib.Table(mos.NMOS, tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	ch := &qwm.Chain{Pol: mos.NMOS, VDD: tech.VDD}
	for i := 0; i < k; i++ {
		var g wave.Waveform = wave.DC(tech.VDD)
		if i == 0 {
			g = wave.Step{At: 0, Low: 0, High: tech.VDD}
		}
		ch.Elems = append(ch.Elems, &qwm.Elem{Model: tbl, W: 1.2e-6, Gate: g})
		ch.Caps = append(ch.Caps, qwm.NodeCap{Fixed: 6e-15})
		ch.V0 = append(ch.V0, tech.VDD)
	}
	return ch
}

func TestRunBasicStatistics(t *testing.T) {
	ch := stackChain(t, 4)
	st, err := Run(ch, Variation{VthSigma: 25e-3, WidthSigmaRel: 0.03}, 200, 1, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples < 195 {
		t.Fatalf("only %d samples succeeded (%d failed)", st.Samples, st.Failed)
	}
	// Mean near nominal (variations are symmetric to first order).
	if e := math.Abs(st.Mean-st.NominalDelay) / st.NominalDelay; e > 0.03 {
		t.Errorf("mean %g vs nominal %g (%.1f%% apart)", st.Mean, st.NominalDelay, 100*e)
	}
	if st.Std <= 0 {
		t.Error("zero spread with nonzero variation")
	}
	// Quantiles are ordered.
	if !(st.Min <= st.P50 && st.P50 <= st.P95 && st.P95 <= st.P99 && st.P99 <= st.Max) {
		t.Errorf("quantiles out of order: %+v", st)
	}
	if st.ThreeSigma <= st.Mean {
		t.Error("3σ corner not above the mean")
	}
	// Spread plausible: σ a few percent of the mean at these variations.
	if st.Std > 0.15*st.Mean {
		t.Errorf("σ = %g implausibly large vs mean %g", st.Std, st.Mean)
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	ch := stackChain(t, 3)
	a, err := Run(ch, Variation{VthSigma: 20e-3}, 64, 7, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ch, Variation{VthSigma: 20e-3}, 64, 7, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Std != b.Std || a.P99 != b.P99 {
		t.Errorf("same seed produced different statistics: %+v vs %+v", a, b)
	}
	c, err := Run(ch, Variation{VthSigma: 20e-3}, 64, 8, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean == c.Mean {
		t.Error("different seeds produced identical means")
	}
}

func TestRunSpreadGrowsWithVariation(t *testing.T) {
	ch := stackChain(t, 3)
	small, err := Run(ch, Variation{VthSigma: 10e-3}, 128, 3, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(ch, Variation{VthSigma: 40e-3}, 128, 3, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if large.Std <= small.Std {
		t.Errorf("4× Vth sigma should widen the spread: %g vs %g", large.Std, small.Std)
	}
}

func TestRunValidation(t *testing.T) {
	ch := stackChain(t, 2)
	if _, err := Run(ch, Variation{}, 1, 0, qwm.Options{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Run(&qwm.Chain{}, Variation{}, 16, 0, qwm.Options{}); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestShiftedModelConsistency(t *testing.T) {
	tbl, err := lib.Table(mos.NMOS, tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	m := shiftedModel{IVModel: tbl, dVth: 0.05}
	// A +50 mV threshold shift must reduce the on-current.
	i0, _, _, _ := tbl.IV(1e-6, 3.3, 1.0, 0)
	i1, _, _, _ := m.IV(1e-6, 3.3, 1.0, 0)
	if i1 >= i0 {
		t.Errorf("higher Vth should reduce current: %g vs %g", i1, i0)
	}
	if m.Threshold(0) <= tbl.Threshold(0) {
		t.Error("threshold query not shifted")
	}
	if m.Vdsat(3.3, 0) >= tbl.Vdsat(3.3, 0) {
		t.Error("Vdsat should shrink with higher Vth")
	}
}
