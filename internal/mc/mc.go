// Package mc runs Monte Carlo timing analysis over a QWM chain: each sample
// draws per-device process variations (threshold shift, width deviation),
// re-evaluates the chain with QWM, and the ensemble yields the delay
// distribution — mean, sigma and tail quantiles. At ~0.5 ms per evaluation,
// thousand-sample statistical timing is interactive; through a SPICE-class
// engine the same experiment is an overnight job. (Statistical STA is not
// in the 2003 paper; it is the kind of downstream use its speed-up was
// aimed at.)
package mc

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"qwm/internal/devmodel"
	"qwm/internal/qwm"
)

// Variation describes the per-device process spread.
type Variation struct {
	// VthSigma is the standard deviation of the per-device threshold shift
	// in volts (e.g. 20 mV for a mature 0.35 µm process).
	VthSigma float64
	// WidthSigmaRel is the relative standard deviation of each width
	// (e.g. 0.02 for ±2 %).
	WidthSigmaRel float64
}

// Stats summarizes a delay distribution.
type Stats struct {
	Samples                  int
	Mean, Std                float64
	Min, Max                 float64
	P50, P95, P99            float64
	Failed                   int // samples whose evaluation did not converge
	NominalDelay, ThreeSigma float64
}

// shiftedModel wraps an IVModel with a threshold shift δ: in the folded
// coordinates a +δ threshold is exactly a −δ gate-drive shift.
type shiftedModel struct {
	devmodel.IVModel
	dVth float64
}

func (m shiftedModel) IV(w, vg, vd, vs float64) (i, dvg, dvd, dvs float64) {
	return m.IVModel.IV(w, vg-m.dVth, vd, vs)
}

func (m shiftedModel) Threshold(vs float64) float64 {
	return m.IVModel.Threshold(vs) + m.dVth
}

func (m shiftedModel) Vdsat(vg, vs float64) float64 {
	return m.IVModel.Vdsat(vg-m.dVth, vs)
}

// perturb returns a deep-enough copy of the chain with per-device draws
// applied (elements are copied; models are wrapped; caps/V0 shared —
// read-only during evaluation).
func perturb(ch *qwm.Chain, v Variation, r *rand.Rand) *qwm.Chain {
	out := &qwm.Chain{
		Pol: ch.Pol, VDD: ch.VDD,
		Caps: ch.Caps, V0: ch.V0,
	}
	out.Elems = make([]*qwm.Elem, len(ch.Elems))
	for i, e := range ch.Elems {
		ne := *e
		if !e.IsWire() {
			if v.VthSigma > 0 {
				ne.Model = shiftedModel{IVModel: e.Model, dVth: r.NormFloat64() * v.VthSigma}
			}
			if v.WidthSigmaRel > 0 {
				f := 1 + r.NormFloat64()*v.WidthSigmaRel
				if f < 0.5 {
					f = 0.5
				}
				ne.W = e.W * f
			}
		}
		out.Elems[i] = &ne
	}
	return out
}

// RunSamples evaluates n Monte Carlo samples of the chain in parallel (the
// device tables are immutable after characterization, so workers share
// them) and returns the successful delays in sample order. The seed makes
// the draw deterministic.
//
// Each worker's qwm.Evaluate borrows solver scratch from the engine's
// process-wide pool, so after the first few samples warm it the sampling
// loop reaches a steady state with no per-iteration solver allocations —
// the same memory discipline the STA worker pool relies on.
func RunSamples(ch *qwm.Chain, v Variation, n int, seed int64, opts qwm.Options) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("mc: need at least 2 samples")
	}
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	// Pre-draw per-sample chains sequentially so the result is independent
	// of scheduling.
	r := rand.New(rand.NewSource(seed))
	chains := make([]*qwm.Chain, n)
	for i := range chains {
		chains[i] = perturb(ch, v, r)
	}

	delays := make([]float64, n)
	okFlags := make([]bool, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	// Atomic work cursor: one fetch-add per sample instead of a channel
	// rendezvous, and each worker keeps reusing the same pooled solver
	// scratch run after run.
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, err := qwm.Evaluate(chains[i], opts)
				if err != nil {
					continue
				}
				d, err := res.Delay50(0, ch.VDD)
				if err != nil {
					continue
				}
				delays[i] = d
				okFlags[i] = true
			}
		}()
	}
	wg.Wait()

	var good []float64
	for i, ok := range okFlags {
		if ok {
			good = append(good, delays[i])
		}
	}
	return good, nil
}

// Run evaluates n samples and summarizes the delay distribution.
func Run(ch *qwm.Chain, v Variation, n int, seed int64, opts qwm.Options) (*Stats, error) {
	good, err := RunSamples(ch, v, n, seed, opts)
	if err != nil {
		return nil, err
	}
	nominal, err := qwm.Evaluate(ch, opts)
	if err != nil {
		return nil, fmt.Errorf("mc: nominal evaluation: %w", err)
	}
	nomDelay, err := nominal.Delay50(0, ch.VDD)
	if err != nil {
		return nil, err
	}
	if len(good) < 2 {
		return nil, fmt.Errorf("mc: only %d of %d samples evaluated", len(good), n)
	}
	good = append([]float64(nil), good...)
	sort.Float64s(good)
	st := &Stats{
		Samples:      len(good),
		Failed:       n - len(good),
		Min:          good[0],
		Max:          good[len(good)-1],
		P50:          quantile(good, 0.50),
		P95:          quantile(good, 0.95),
		P99:          quantile(good, 0.99),
		NominalDelay: nomDelay,
	}
	sum := 0.0
	for _, d := range good {
		sum += d
	}
	st.Mean = sum / float64(len(good))
	ss := 0.0
	for _, d := range good {
		ss += (d - st.Mean) * (d - st.Mean)
	}
	st.Std = 0
	if len(good) > 1 {
		st.Std = sqrt(ss / float64(len(good)-1))
	}
	st.ThreeSigma = st.Mean + 3*st.Std
	return st, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
