package verify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"qwm/internal/api/v1"
	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/netlist"
	"qwm/internal/obs"
	"qwm/internal/service"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

// ServiceConfig parameterizes the service-path differential: the same
// workload is pushed through the HTTP/JSON front door (internal/service) and
// through the engine directly, and the two must agree bit for bit. The sweep
// also gates the disk tier's restart guarantee and the chaos contract as
// seen through the wire.
type ServiceConfig struct {
	// Seed drives the chaos injectors (identical seeds reproduce identical
	// wire-level chaos responses).
	Seed int64
	// Workers is the per-analyzer worker count used on both sides of the
	// direct-vs-service comparison (default 4).
	Workers int
	// Bits sizes the decoder workload (default 3: an 8-output decoder).
	Bits int
	// CacheDir roots the persistent tier for the restart cell; "" uses a
	// temporary directory removed when the sweep finishes.
	CacheDir string
	// Progress, when set, receives one line per completed cell.
	Progress func(format string, args ...any)
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Bits <= 0 {
		c.Bits = 3
	}
	return c
}

// ServiceCell is one gated service-path experiment.
type ServiceCell struct {
	Name string `json:"name"`
	// Problems lists every violated invariant; empty means the cell passed.
	Problems []string `json:"problems,omitempty"`
	Pass     bool     `json:"pass"`
}

// ServiceReport aggregates the service-path sweep.
type ServiceReport struct {
	SchemaVersion string        `json:"schema_version"`
	Seed          int64         `json:"seed"`
	Cells         []ServiceCell `json:"cells"`
	// DiskHitRate is the restart cell's warm-disk hit rate (the acceptance
	// bar is 0.9).
	DiskHitRate float64 `json:"disk_hit_rate"`
	Failures    int     `json:"failures"`
	Pass        bool    `json:"pass"`
}

// JSON renders the report.
func (r *ServiceReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// postAnalyze drives one request through the full wire path: JSON encode,
// HTTP handler, JSON response. The HTTP layer is exercised for real — this
// is the differential's point — just without a TCP listener.
func postAnalyze(h http.Handler, req any) (int, []byte) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, []byte(err.Error())
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/analyze", bytes.NewReader(b)))
	return rec.Code, rec.Body.Bytes()
}

func decodeResponse(body []byte) (v1.AnalyzeResponse, error) {
	var resp v1.AnalyzeResponse
	err := json.Unmarshal(body, &resp)
	return resp, err
}

// okResult decodes body and returns its result, appending a problem (and
// returning nil) when the response is not a healthy 200/ok envelope.
func okResult(label string, code int, body []byte, problems *[]string) *v1.AnalyzeResult {
	if code != http.StatusOK {
		*problems = append(*problems, fmt.Sprintf("%s: HTTP %d: %s", label, code, body))
		return nil
	}
	resp, err := decodeResponse(body)
	if err != nil {
		*problems = append(*problems, fmt.Sprintf("%s: undecodable response: %v", label, err))
		return nil
	}
	if resp.Status != v1.StatusOK || resp.Result == nil {
		*problems = append(*problems, fmt.Sprintf("%s: status %q, error %+v", label, resp.Status, resp.Error))
		return nil
	}
	return resp.Result
}

// sameArrivals appends a problem for every net where two wire-level arrival
// maps differ by even one bit.
func sameArrivals(label string, ref, got map[string]v1.Arrival, problems []string) []string {
	if len(ref) != len(got) {
		problems = append(problems, fmt.Sprintf("%s: %d nets, want %d", label, len(got), len(ref)))
	}
	for net, ra := range ref {
		ga, ok := got[net]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: net %s missing", label, net))
			continue
		}
		if ga != ra {
			problems = append(problems, fmt.Sprintf("%s: net %s arrival %+v, want %+v", label, net, ga, ra))
		}
	}
	return problems
}

// RunService executes the service-path sweep: direct-vs-wire bit identity,
// warm-disk restart, and the chaos contract through the front door.
func RunService(cfg ServiceConfig) (*ServiceReport, error) {
	cfg = cfg.withDefaults()
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)

	nl, _, outs, err := stages.DecoderNetlist(tech, cfg.Bits, 1e-6, 10e-15)
	if err != nil {
		return nil, fmt.Errorf("verify: decoder workload: %w", err)
	}
	deck := netlist.Format(&netlist.Deck{Title: "* verify service decoder", Netlist: nl})

	cacheDir := cfg.CacheDir
	if cacheDir == "" {
		dir, err := os.MkdirTemp("", "qwm-verify-service-")
		if err != nil {
			return nil, fmt.Errorf("verify: cache dir: %w", err)
		}
		defer os.RemoveAll(dir)
		cacheDir = dir
	}

	rep := &ServiceReport{SchemaVersion: v1.SchemaVersion, Seed: cfg.Seed}
	add := func(cell ServiceCell) {
		cell.Pass = len(cell.Problems) == 0
		rep.Cells = append(rep.Cells, cell)
		if !cell.Pass {
			rep.Failures++
		}
		if cfg.Progress != nil {
			mark := "ok"
			if !cell.Pass {
				mark = "FAIL " + cell.Problems[0]
			}
			cfg.Progress("service %s: %s", cell.Name, mark)
		}
	}

	req := v1.AnalyzeRequest{
		SchemaVersion: v1.SchemaVersion,
		Netlist:       deck,
		Outputs:       outs,
		FullArrivals:  true,
	}

	add(runServiceDirectCell(tech, lib, outs, req, cfg))
	restart, hitRate := runServiceRestartCell(tech, lib, cacheDir, req, cfg)
	rep.DiskHitRate = hitRate
	add(restart)
	add(runServiceChaosCell("chaos-cache-stall", req, cfg, true))
	add(runServiceChaosCell("chaos-budget-exhaustion", req, cfg, false))
	add(runServiceTraceCell(tech, lib, req, cfg))

	rep.Pass = rep.Failures == 0
	return rep, nil
}

// runServiceDirectCell gates wire transparency: the HTTP/JSON round trip
// must not perturb a single bit of any arrival relative to calling the
// engine in-process with the same configuration. Go's JSON encoder emits the
// shortest float64 representation that round-trips exactly, so bit equality
// through the wire is a meaningful demand, not a flaky one.
func runServiceDirectCell(tech *mos.Tech, lib *devmodel.Library, outs []string, req v1.AnalyzeRequest, cfg ServiceConfig) ServiceCell {
	cell := ServiceCell{Name: "direct-vs-service"}

	// The direct run analyzes the SAME parsed deck the service sees — the
	// deck text is the shared input; what is under test is everything the
	// service adds on top of the parse (queue, pool, JSON round trip).
	deck, err := netlist.ParseString(req.Netlist)
	if err != nil {
		cell.Problems = append(cell.Problems, "deck parse failed: "+err.Error())
		return cell
	}
	direct := sta.New(tech, lib, sta.Config{Workers: cfg.Workers})
	canon := make([]string, len(outs))
	for i, o := range outs {
		canon[i] = circuit.CanonName(o)
	}
	res, err := direct.AnalyzeContext(nil, sta.Request{Netlist: deck.Netlist, Outputs: canon})
	if err != nil {
		cell.Problems = append(cell.Problems, "direct engine run failed: "+err.Error())
		return cell
	}

	s := service.New(tech, lib, service.Options{AnalyzerWorkers: cfg.Workers})
	defer s.Close()
	code, body := postAnalyze(s.Handler(), req)
	wire := okResult("service run", code, body, &cell.Problems)
	if wire == nil {
		return cell
	}

	ref := v1.FromResult(res, canon, true)
	if wire.WorstArrival != ref.WorstArrival || wire.WorstOutput != ref.WorstOutput {
		cell.Problems = append(cell.Problems,
			fmt.Sprintf("worst path (%s, %.17g) via service, (%s, %.17g) direct",
				wire.WorstOutput, wire.WorstArrival, ref.WorstOutput, ref.WorstArrival))
	}
	if wire.StagesEvaluated != ref.StagesEvaluated {
		cell.Problems = append(cell.Problems,
			fmt.Sprintf("service evaluated %d stages, direct %d", wire.StagesEvaluated, ref.StagesEvaluated))
	}
	cell.Problems = sameArrivals("outputs", ref.Outputs, wire.Outputs, cell.Problems)
	cell.Problems = sameArrivals("arrivals", ref.Arrivals, wire.Arrivals, cell.Problems)
	if wire.Diagnostics.Healthy != ref.Diagnostics.Healthy {
		cell.Problems = append(cell.Problems, "service and direct disagree on health")
	}
	return cell
}

// runServiceRestartCell gates the persistence contract: a NEW server process
// over the same cache directory answers bit-identically to the warm-memory
// run of the old process, evaluating nothing and hitting disk >= 90 %.
func runServiceRestartCell(tech *mos.Tech, lib *devmodel.Library, cacheDir string, req v1.AnalyzeRequest, cfg ServiceConfig) (ServiceCell, float64) {
	cell := ServiceCell{Name: "restart-warm-disk"}

	s1 := service.New(tech, lib, service.Options{CacheDir: cacheDir, AnalyzerWorkers: cfg.Workers})
	h1 := s1.Handler()
	code, body := postAnalyze(h1, req)
	cold := okResult("cold run", code, body, &cell.Problems)
	warmCode, warmBody := postAnalyze(h1, req)
	warmMem := okResult("warm-memory run", warmCode, warmBody, &cell.Problems)
	if err := s1.Close(); err != nil {
		cell.Problems = append(cell.Problems, "first server close: "+err.Error())
	}
	if cold == nil || warmMem == nil {
		return cell, 0
	}
	if cold.StagesEvaluated == 0 {
		cell.Problems = append(cell.Problems, "cold run evaluated nothing — the disk tier was never populated")
	}

	reg := obs.NewRegistry()
	s2 := service.New(tech, lib, service.Options{CacheDir: cacheDir, AnalyzerWorkers: cfg.Workers, Metrics: reg})
	defer s2.Close()
	code2, diskBody := postAnalyze(s2.Handler(), req)
	warmDisk := okResult("warm-disk run", code2, diskBody, &cell.Problems)
	if warmDisk == nil {
		return cell, 0
	}

	// Bit identity at the transport level: the restarted replica's response
	// bytes equal the warm-memory response bytes.
	if !bytes.Equal(warmBody, diskBody) {
		cell.Problems = append(cell.Problems, "warm-disk response bytes differ from warm-memory response")
	}
	if warmDisk.StagesEvaluated != 0 {
		cell.Problems = append(cell.Problems,
			fmt.Sprintf("warm-disk run evaluated %d stages, want 0", warmDisk.StagesEvaluated))
	}

	snap := reg.Snapshot()
	hits, misses := snap.Counters["sta/disk/hits"], snap.Counters["sta/disk/misses"]
	var rate float64
	if total := hits + misses; total > 0 {
		rate = float64(hits) / float64(total)
	}
	if rate < 0.9 {
		cell.Problems = append(cell.Problems,
			fmt.Sprintf("warm-disk hit rate %.3f (%d hits, %d misses), want >= 0.9", rate, hits, misses))
	}
	return cell, rate
}

// runServiceTraceCell gates the tracing determinism contract through the
// front door: the same traced request, analyzed on fresh replicas at engine
// workers 1 and 8, must export byte-identical DETERMINISTIC traces (semantic
// span IDs plus the (Level, Item, ID) sort make scheduling invisible), and
// the response envelope must carry the trace id that retrieves the trace.
func runServiceTraceCell(tech *mos.Tech, lib *devmodel.Library, req v1.AnalyzeRequest, cfg ServiceConfig) ServiceCell {
	cell := ServiceCell{Name: "trace-deterministic"}
	export := func(workers int) []byte {
		fl := obs.NewFlightRecorder()
		defer fl.Close()
		s := service.New(tech, lib, service.Options{AnalyzerWorkers: workers, Flight: fl})
		defer s.Close()
		code, body := postAnalyze(s.Handler(), req)
		label := fmt.Sprintf("traced run (workers=%d)", workers)
		if okResult(label, code, body, &cell.Problems) == nil {
			return nil
		}
		resp, _ := decodeResponse(body) // okResult already proved decodability
		if resp.TraceID == "" {
			cell.Problems = append(cell.Problems, label+": envelope carries no trace_id")
			return nil
		}
		fl.Flush()
		rt := fl.Get(resp.TraceID)
		if rt == nil {
			cell.Problems = append(cell.Problems, label+": flight recorder did not retain trace "+resp.TraceID)
			return nil
		}
		b, err := rt.ChromeJSON(true)
		if err != nil {
			cell.Problems = append(cell.Problems, label+": deterministic export: "+err.Error())
			return nil
		}
		return b
	}
	one := export(1)
	eight := export(8)
	if one == nil || eight == nil {
		return cell
	}
	if !bytes.Equal(one, eight) {
		cell.Problems = append(cell.Problems, "deterministic trace export differs between engine workers 1 and 8")
	}
	return cell
}

// runServiceChaosCell gates the chaos contract through the front door: the
// faulted response is deterministic (same request => same bytes), and either
// bit-equal to the clean response (recoverable classes, recoverable=true) or
// conservative and visibly degraded (degrading classes).
func runServiceChaosCell(name string, req v1.AnalyzeRequest, cfg ServiceConfig, recoverable bool) ServiceCell {
	cell := ServiceCell{Name: name}
	class := "cache-stall"
	if !recoverable {
		class = "budget-exhaustion"
	}

	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	s := service.New(tech, lib, service.Options{AnalyzerWorkers: cfg.Workers})
	defer s.Close()
	h := s.Handler()

	// Warm the pooled analyzer first, then take a WARM clean baseline: a
	// warm response reports stages_evaluated 0, so the post-chaos isolation
	// probe below can demand byte identity.
	if code, body := postAnalyze(h, req); code != http.StatusOK {
		cell.Problems = append(cell.Problems, fmt.Sprintf("warmup run: HTTP %d: %s", code, body))
		return cell
	}
	code, cleanBody := postAnalyze(h, req)
	clean := okResult("clean run", code, cleanBody, &cell.Problems)
	if clean == nil {
		return cell
	}
	if !clean.Diagnostics.Healthy {
		cell.Problems = append(cell.Problems, "clean service run reports unhealthy")
	}

	chaosReq := req
	chaosReq.Chaos = &v1.Chaos{Seed: cfg.Seed, Classes: []string{class}}
	c1, b1 := postAnalyze(h, chaosReq)
	c2, b2 := postAnalyze(h, chaosReq)
	if !bytes.Equal(b1, b2) || c1 != c2 {
		cell.Problems = append(cell.Problems, "chaos responses differ across identical requests (determinism)")
	}
	faulted := okResult("faulted run", c1, b1, &cell.Problems)
	if faulted == nil {
		return cell
	}

	if recoverable {
		// Latency-only fault: the wire result must be bit-equal to clean.
		cell.Problems = sameArrivals("recoverable class", clean.Arrivals, faulted.Arrivals, cell.Problems)
		if !faulted.Diagnostics.Healthy {
			cell.Problems = append(cell.Problems, "recoverable class degraded the analysis")
		}
	} else {
		// Degrading fault: visible in diagnostics, and every arrival stays
		// conservative (never earlier than clean).
		if faulted.Diagnostics.Healthy {
			cell.Problems = append(cell.Problems, "degrading class at rate 1 reported healthy")
		}
		for net, ref := range clean.Arrivals {
			got, ok := faulted.Arrivals[net]
			if !ok {
				cell.Problems = append(cell.Problems, fmt.Sprintf("completeness: net %s missing from faulted arrivals", net))
				continue
			}
			if got.Rise < ref.Rise*(1-conservativeEps) || got.Fall < ref.Fall*(1-conservativeEps) {
				cell.Problems = append(cell.Problems,
					fmt.Sprintf("conservatism: net %s faulted arrival (r %.6g, f %.6g) below clean (r %.6g, f %.6g)",
						net, got.Rise, got.Fall, ref.Rise, ref.Fall))
			}
		}
	}

	// Isolation: a clean request after the chaos traffic must still be
	// byte-identical to the original clean response — chaos must never
	// poison the pooled analyzer.
	c3, after := postAnalyze(h, req)
	if c3 != http.StatusOK || !bytes.Equal(after, cleanBody) {
		cell.Problems = append(cell.Problems, "clean response changed after chaos traffic (pool poisoned)")
	}
	return cell
}
