package verify

import "testing"

// TestRunECOSmoke runs a reduced-budget ECO sweep: every workload × variant
// sequence with a short edit schedule must pass the incremental ≡ scratch
// and dirty-cone-minimality gates. The full-budget sweep runs via `make eco`.
func TestRunECOSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("eco sweep in -short mode")
	}
	rep, err := RunECO(ECOConfig{Seed: 1, Edits: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Sequences {
		if !s.Pass {
			t.Errorf("%s/%s: %v", s.Workload, s.Variant, s.Problems)
		}
	}
	if !rep.Pass {
		t.Fatalf("eco sweep failed: %d sequences", rep.Failures)
	}
}
