package verify

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/reduce"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

// HotPathCase is one generated workload for the hot-path feature
// differential: a wide fanout netlist (stages.WideNetlist) whose branches
// are structurally identical — the shape equivalence-class memoization
// collapses — with long series wire runs — the shape the reduction pre-pass
// collapses. Light and Heavy share the structure; Heavy scales every branch
// output load, which is the class-level incarnation of the sibling aliasing
// trap: the loads are part of the structural fingerprint, so a correct memo
// must never serve Heavy from Light's entries.
type HotPathCase struct {
	Name      string
	Fan, Segs int
	Light     *AnalyzeCase
	Heavy     *AnalyzeCase
}

// GenHotPathCase draws a wide netlist with 3–8 identical branches, 12–24
// wire segments per branch, and a heavy-load sibling scaled 6–30×.
func GenHotPathCase(tech *mos.Tech, r *rand.Rand, i int) (*HotPathCase, error) {
	fan := 3 + r.Intn(6)
	segs := 12 + r.Intn(13)
	w := (0.8 + 1.4*r.Float64()) * 1e-6
	cl := (2 + 10*r.Float64()) * 1e-15
	scale := 6 + 24*r.Float64()
	arrival := r.Float64() * 120e-12
	slew := r.Float64() * 90e-12
	build := func(load float64) (*AnalyzeCase, error) {
		nl, ins, outs, err := stages.WideNetlist(tech, fan, segs, w, load)
		if err != nil {
			return nil, err
		}
		primary := make(map[string]sta.Arrival, len(ins))
		for _, in := range ins {
			primary[in] = sta.Arrival{
				Rise: arrival, Fall: arrival,
				RiseSlew: slew, FallSlew: slew,
			}
		}
		return &AnalyzeCase{Netlist: nl, Primary: primary, Outputs: outs}, nil
	}
	light, err := build(cl)
	if err != nil {
		return nil, err
	}
	heavy, err := build(cl * scale)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("wide%03d-f%d-s%d", i, fan, segs)
	light.Name, heavy.Name = name+"-light", name+"-heavy"
	return &HotPathCase{Name: name, Fan: fan, Segs: segs, Light: light, Heavy: heavy}, nil
}

// HotPathDiff is the outcome of one hot-path feature differential. Four
// legs, mirroring the PR's acceptance contract:
//
//  1. features explicitly disabled ⇒ bit-identical to the default engine
//     (and zero reduction/class activity reported);
//  2. features on ⇒ every output arrival within the configured tolerance of
//     the exact run, with the reduction and memoization demonstrably active;
//  3. features on, serial vs parallel ⇒ bit-identical arrivals, critical
//     path and accounting;
//  4. Light then Heavy on one shared features-on analyzer ⇒ Heavy
//     bit-identical to a fresh features-on analyzer (the class-level
//     aliasing trap), and measurably different from Light.
type HotPathDiff struct {
	Name string `json:"name"`
	// MaxErrPct is the worst features-on arrival deviation from the exact
	// run, in percent (leg 2).
	MaxErrPct float64 `json:"max_err_pct"`
	// ReducedNodes / ClassCount / ClassHits echo the features-on run's
	// diagnostics so the report shows the features actually fired.
	ReducedNodes int      `json:"reduced_nodes"`
	ClassCount   int      `json:"class_count"`
	ClassHits    int      `json:"class_hits"`
	Mismatches   []string `json:"mismatches,omitempty"`
	Pass         bool     `json:"pass"`
	Err          string   `json:"err,omitempty"`
}

// analyzeHot runs one case on a fresh analyzer with the given feature
// configuration and worker count.
func analyzeHot(tech *mos.Tech, lib *devmodel.Library, c *AnalyzeCase, workers int,
	red reduce.Config, memo sta.MemoConfig, metrics *obs.Registry) (*sta.Analyzer, *sta.Result, error) {
	a := sta.New(tech, lib, sta.Config{Workers: workers, Metrics: metrics, Reduction: red, Memo: memo})
	res, err := a.AnalyzeContext(nil, sta.Request{Netlist: c.Netlist, Primary: c.Primary, Outputs: c.Outputs})
	return a, res, err
}

// maxArrivalErrPct returns the worst relative rise/fall arrival deviation of
// got from ref across all outputs, in percent.
func maxArrivalErrPct(ref, got *sta.Result) float64 {
	worst := 0.0
	for net, r := range ref.Arrivals {
		g := got.Arrivals[net]
		for _, p := range [2][2]float64{{r.Rise, g.Rise}, {r.Fall, g.Fall}} {
			if p[0] == 0 {
				continue
			}
			if e := 100 * math.Abs(p[1]-p[0]) / math.Abs(p[0]); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// RunHotPathDiff executes the four-leg hot-path differential on one case.
func RunHotPathDiff(tech *mos.Tech, lib *devmodel.Library, c *HotPathCase, workers int, tolPct float64) HotPathDiff {
	return RunHotPathDiffObserved(tech, lib, c, workers, tolPct, nil)
}

// RunHotPathDiffObserved is RunHotPathDiff with an optional metrics registry
// attached to every analyzer it constructs.
func RunHotPathDiffObserved(tech *mos.Tech, lib *devmodel.Library, c *HotPathCase, workers int, tolPct float64, metrics *obs.Registry) HotPathDiff {
	d := HotPathDiff{Name: c.Name}
	offCfg, offMemo := reduce.Config{}, sta.MemoConfig{}
	onCfg := reduce.Config{Enabled: true}
	onMemo := sta.MemoConfig{Enabled: true, Interp: true}

	// Exact reference: the default engine, serial.
	_, ref, err := analyzeHot(tech, lib, c.Light, 1, offCfg, offMemo, metrics)
	if err != nil {
		d.Err = "reference: " + err.Error()
		return d
	}

	// Leg 1: explicitly zeroed feature knobs must be a true no-op — same
	// bits, same cache-key namespace, no reported activity.
	_, off, err := analyzeHot(tech, lib, c.Light, 1,
		reduce.Config{Enabled: false, TolPct: 5}, sta.MemoConfig{Enabled: false, Interp: true}, metrics)
	if err != nil {
		d.Err = "features-off: " + err.Error()
		return d
	}
	d.Mismatches = diffResults("features-off", ref, off, d.Mismatches)
	if off.StagesEvaluated != ref.StagesEvaluated {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("features-off evaluated %d stages, reference %d", off.StagesEvaluated, ref.StagesEvaluated))
	}
	if off.ReducedNodes != 0 || off.ClassCount != 0 || off.ClassHits != 0 {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("disabled features reported activity: %+v", off.Diagnostics))
	}

	// Leg 2: features on — bounded error, demonstrably active.
	_, on, err := analyzeHot(tech, lib, c.Light, 1, onCfg, onMemo, metrics)
	if err != nil {
		d.Err = "features-on: " + err.Error()
		return d
	}
	d.MaxErrPct = maxArrivalErrPct(ref, on)
	d.ReducedNodes, d.ClassCount, d.ClassHits = on.ReducedNodes, on.ClassCount, on.ClassHits
	if d.MaxErrPct > tolPct {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("features-on arrival error %.2f%% exceeds %.2f%%", d.MaxErrPct, tolPct))
	}
	if on.ReducedNodes == 0 {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("reduction removed no nodes on a %d-segment wire netlist", c.Segs))
	}
	if on.ClassCount == 0 || on.ClassHits == 0 {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("memo saw no class sharing across %d identical branches", c.Fan))
	}

	// Leg 3: features on, serial vs parallel — bit-identical.
	_, par, err := analyzeHot(tech, lib, c.Light, workers, onCfg, onMemo, metrics)
	if err != nil {
		d.Err = "features-on parallel: " + err.Error()
		return d
	}
	d.Mismatches = diffResults("hot-serial-vs-parallel", on, par, d.Mismatches)
	if par.StagesEvaluated != on.StagesEvaluated || par.ClassCount != on.ClassCount ||
		par.ClassHits != on.ClassHits || par.ReducedNodes != on.ReducedNodes {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("parallel accounting %+v, serial %+v", par.Diagnostics, on.Diagnostics))
	}

	// Leg 4: the class-level aliasing trap. Light then Heavy on one shared
	// features-on analyzer; Heavy must match a fresh features-on analyzer
	// bit for bit (the loads are part of the fingerprint, so Heavy's classes
	// can never resolve to Light's entries) and must differ from Light.
	shared := sta.New(tech, lib, sta.Config{Workers: workers, Metrics: metrics, Reduction: onCfg, Memo: onMemo})
	lightRes, err := shared.AnalyzeContext(nil, sta.Request{Netlist: c.Light.Netlist, Primary: c.Light.Primary, Outputs: c.Light.Outputs})
	if err != nil {
		d.Err = "shared light: " + err.Error()
		return d
	}
	heavyShared, err := shared.AnalyzeContext(nil, sta.Request{Netlist: c.Heavy.Netlist, Primary: c.Heavy.Primary, Outputs: c.Heavy.Outputs})
	if err != nil {
		d.Err = "shared heavy: " + err.Error()
		return d
	}
	_, heavyRef, err := analyzeHot(tech, lib, c.Heavy, 1, onCfg, onMemo, metrics)
	if err != nil {
		d.Err = "fresh heavy: " + err.Error()
		return d
	}
	d.Mismatches = diffResults("hot-shared-vs-fresh", heavyRef, heavyShared, d.Mismatches)
	if reflect.DeepEqual(lightRes.Arrivals, heavyShared.Arrivals) {
		d.Mismatches = append(d.Mismatches, "heavy-load arrivals identical to light-load arrivals (memo ignored loads)")
	}

	d.Pass = len(d.Mismatches) == 0
	return d
}
