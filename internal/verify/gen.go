// Package verify is the differential-verification subsystem: it generates
// seed-reproducible random stage netlists and cross-checks the QWM timing
// engine three ways — per-stage delay/slew against the in-repo SPICE-class
// transient baseline (the paper's own validation methodology), cached
// against uncached full sta.Analyze runs, and serial against parallel runs.
// The generated shapes include shared-identity/different-load instances
// specifically built to trip cache-aliasing bugs: a cache key that omits
// any timing-relevant input (as the load map once was) fails the harness
// immediately instead of silently corrupting downstream arrivals.
package verify

import (
	"fmt"
	"math/rand"

	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

// StageCase is one generated single-stage differential case: a random
// series stack evaluated by both QWM and SPICE under identical devices,
// stimulus, loads and initial conditions.
type StageCase struct {
	Name string
	K    int
	W    *stages.Workload
}

// GenStageCase draws one random stack from r: depth 1–10, NMOS or PMOS
// path, randomized W (and, half the time, per-device L), explicit caps on a
// random subset of internal nodes, a random output load, and occasionally a
// ramped input edge. Identical (tech, r-state) always yields the identical
// case — the harness is seed-reproducible end to end.
func GenStageCase(tech *mos.Tech, r *rand.Rand, i int) (*StageCase, error) {
	k := 1 + r.Intn(10)
	pmos := r.Float64() < 0.4

	widths := make([]float64, k)
	for j := range widths {
		if pmos {
			widths[j] = (1.6 + 4.8*r.Float64()) * 1e-6
		} else {
			widths[j] = (0.8 + 3.2*r.Float64()) * 1e-6
		}
	}
	var lengths []float64
	if r.Float64() < 0.5 {
		lengths = make([]float64, k)
		for j := range lengths {
			lengths[j] = tech.LMin * (1 + 0.6*r.Float64())
		}
	}
	nodeCaps := make([]float64, k)
	for j := range nodeCaps {
		if r.Float64() < 0.4 {
			nodeCaps[j] = (0.3 + 2.7*r.Float64()) * 1e-15
		}
	}
	cl := (2 + 20*r.Float64()) * 1e-15
	inSlew := 0.0
	if r.Float64() < 0.3 {
		inSlew = (20 + 100*r.Float64()) * 1e-12
	}

	w, err := stages.CustomStack(tech, stages.StackSpec{
		PMOS: pmos, Widths: widths, Lengths: lengths,
		NodeCaps: nodeCaps, CL: cl, InSlew: inSlew,
	})
	if err != nil {
		return nil, err
	}
	c := &StageCase{Name: fmt.Sprintf("case%03d-%s", i, w.Name), K: k, W: w}
	return c, nil
}

// AnalyzeCase is one generated multi-stage netlist for the full-Analyze
// differentials (cached-vs-uncached and serial-vs-parallel): a driver chain
// fanning out into geometrically identical gates with different loads.
type AnalyzeCase struct {
	Name    string
	Netlist *circuit.Netlist
	Primary map[string]sta.Arrival
	Outputs []string
}

// treeParams are the structural knobs of one fanout tree, drawn separately
// from the load values so sibling pairs can share identity but not loads.
type treeParams struct {
	depth   int // root inverter chain length (1–3)
	fan     int // identical fanout inverters (2–4)
	wn, wp  float64
	arrival float64
	slew    float64
}

func drawTreeParams(r *rand.Rand) treeParams {
	return treeParams{
		depth:   1 + r.Intn(3),
		fan:     2 + r.Intn(3),
		wn:      (0.9 + 1.6*r.Float64()) * 1e-6,
		wp:      (1.8 + 3.2*r.Float64()) * 1e-6,
		arrival: r.Float64() * 120e-12,
		slew:    r.Float64() * 90e-12,
	}
}

// buildTree constructs the fanout-tree netlist for p with the given
// per-branch output loads (len == p.fan). Node names depend only on p, so
// two trees with equal p and different loads are structurally identical
// stages driving different fanout — the aliasing-bug shape.
func buildTree(tech *mos.Tech, p treeParams, loads []float64) *AnalyzeCase {
	nl := &circuit.Netlist{}
	addInv := func(tag, in, out string, wn, wp float64) {
		nl.AddTransistor(&circuit.Transistor{Name: "mn" + tag, Kind: circuit.KindNMOS, Drain: out, Gate: in, Source: "0", Body: "0", W: wn, L: tech.LMin})
		nl.AddTransistor(&circuit.Transistor{Name: "mp" + tag, Kind: circuit.KindPMOS, Drain: out, Gate: in, Source: "vdd", Body: "vdd", W: wp, L: tech.LMin})
	}
	prev := "in0"
	for d := 0; d < p.depth; d++ {
		out := fmt.Sprintf("t%d", d+1)
		addInv(fmt.Sprintf("d%d", d), prev, out, p.wn, p.wp)
		prev = out
	}
	outs := make([]string, p.fan)
	for f := 0; f < p.fan; f++ {
		out := fmt.Sprintf("o%d", f+1)
		addInv(fmt.Sprintf("f%d", f), prev, out, p.wn, p.wp)
		nl.AddCapacitor(fmt.Sprintf("c%d", f+1), out, "0", loads[f])
		outs[f] = out
	}
	return &AnalyzeCase{
		Netlist: nl,
		Primary: map[string]sta.Arrival{"in0": {
			Rise: p.arrival, Fall: p.arrival,
			RiseSlew: p.slew, FallSlew: p.slew,
		}},
		Outputs: outs,
	}
}

// GenAnalyzeCase draws a fanout tree whose identical sibling gates carry
// distinct random loads spanning 1–60 fF.
func GenAnalyzeCase(tech *mos.Tech, r *rand.Rand, i int) *AnalyzeCase {
	p := drawTreeParams(r)
	loads := make([]float64, p.fan)
	for j := range loads {
		loads[j] = (1 + 59*r.Float64()) * 1e-15
	}
	c := buildTree(tech, p, loads)
	c.Name = fmt.Sprintf("tree%03d-d%d-f%d", i, p.depth, p.fan)
	return c
}

// SiblingPair is two netlists with identical structure and node names whose
// only difference is the fanout loads — the exact shape that aliased under
// a load-blind delay-cache key when analyzed back to back on one shared
// analyzer.
type SiblingPair struct {
	Name     string
	A, B     *AnalyzeCase
	LoadA    float64
	LoadB    float64
	Distinct bool // loads differ enough that arrivals must differ
}

// GenSiblingPair draws one structure and two load assignments: A uses light
// loads, B scales every branch load by 8–40×.
func GenSiblingPair(tech *mos.Tech, r *rand.Rand, i int) *SiblingPair {
	p := drawTreeParams(r)
	light := make([]float64, p.fan)
	heavy := make([]float64, p.fan)
	scale := 8 + 32*r.Float64()
	for j := range light {
		light[j] = (1 + 4*r.Float64()) * 1e-15
		heavy[j] = light[j] * scale
	}
	a := buildTree(tech, p, light)
	b := buildTree(tech, p, heavy)
	name := fmt.Sprintf("pair%03d-d%d-f%d", i, p.depth, p.fan)
	a.Name, b.Name = name+"-light", name+"-heavy"
	return &SiblingPair{Name: name, A: a, B: b, LoadA: light[0], LoadB: heavy[0], Distinct: true}
}
