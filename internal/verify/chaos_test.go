package verify

import (
	"encoding/json"
	"testing"

	"qwm/internal/faultinject"
)

// TestRunChaosSmall is the in-process smoke of the chaos sweep: one
// generated case re-run under every fault class must pass all three
// invariants (completeness, determinism, conservatism), cover the full
// taxonomy, and actually fire on every cell at rate 1.
func TestRunChaosSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep runs dozens of analyzes; skipped in -short")
	}
	rep, err := RunChaos(ChaosConfig{Seed: 1, N: 1, Rate: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The engine sweep covers every non-network class; network classes have
	// no fire site without a remote tier and are gated by verify -remote.
	want := 0
	for c := faultinject.Class(0); c < faultinject.NumClasses; c++ {
		if !c.Network() {
			want++
		}
	}
	if len(rep.Cells) != want {
		t.Fatalf("got %d cells, want one per engine fault class (%d)", len(rep.Cells), want)
	}
	seen := map[string]bool{}
	for _, cell := range rep.Cells {
		seen[cell.Class] = true
		if !cell.Pass {
			t.Errorf("cell %s/%s failed: %v", cell.Case, cell.Class, cell.Problems)
		}
		if cell.Fired == 0 {
			t.Errorf("cell %s/%s: injector never fired at rate 1", cell.Case, cell.Class)
		}
	}
	for _, name := range faultinject.Classes() {
		if c, err := faultinject.ParseClass(name); err == nil && c.Network() {
			continue
		}
		if !seen[name] {
			t.Errorf("fault class %s missing from the sweep", name)
		}
	}
	if !rep.Pass || rep.Failures != 0 {
		t.Errorf("report: pass=%v failures=%d", rep.Pass, rep.Failures)
	}

	// The report must round-trip as JSON (it is the -chaos CLI's output).
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ChaosReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Seed != rep.Seed || len(back.Cells) != len(rep.Cells) {
		t.Errorf("round-tripped report differs: seed %d/%d, cells %d/%d",
			back.Seed, rep.Seed, len(back.Cells), len(rep.Cells))
	}
}

// TestRunChaosReportDeterministic: two sweeps at the same seed must render
// byte-identical reports — the property that makes a chaos failure
// reproducible from nothing but the seed in the JSON.
func TestRunChaosReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep runs dozens of analyzes; skipped in -short")
	}
	cfg := ChaosConfig{Seed: 42, N: 1, Rate: 1, Workers: 2}
	r1, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := r1.JSON()
	b2, _ := r2.JSON()
	if string(b1) != string(b2) {
		t.Error("same-seed chaos reports are not byte-identical")
	}
}
