package verify

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"

	"qwm/internal/api/v1"
	"qwm/internal/devmodel"
	"qwm/internal/faultinject"
	"qwm/internal/mos"
	"qwm/internal/sta"
)

// ChaosConfig parameterizes one fault-injection sweep: every generated
// analyze case is re-run under each armed fault class, and the degraded
// results are gated on the three chaos invariants — completeness (a report
// always comes back), determinism (bit-for-bit identical results at the
// same seed for any Workers setting), and conservatism (a degraded delay is
// never below the clean QWM delay; latency-only faults change nothing).
type ChaosConfig struct {
	// Seed drives both case generation and every injector; identical seeds
	// reproduce identical faults at identical sites.
	Seed int64
	// N is the number of generated analyze cases (default 6).
	N int
	// Rate is the per-class firing rate in (0, 1] (default 1: every site
	// fires, which maximizes ladder coverage and arms the strictest
	// tier-exercise assertions).
	Rate float64
	// Workers is the parallel worker count checked against the serial run
	// (default 8).
	Workers int
	// Progress, when set, receives one line per completed (case, class).
	Progress func(format string, args ...any)
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.N <= 0 {
		c.N = 6
	}
	if c.Rate <= 0 || c.Rate > 1 {
		c.Rate = 1
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	return c
}

// ChaosCell is the outcome of one (case, fault class) experiment.
type ChaosCell struct {
	Case  string `json:"case"`
	Class string `json:"class"`
	// Fired is the injector's total fire count for the serial run.
	Fired int64 `json:"fired"`
	// Degraded counts directions that resolved below the QWM tier, and
	// Tiers is the per-tier direction inventory of the serial faulted run.
	Degraded int            `json:"degraded"`
	Tiers    map[string]int `json:"tiers,omitempty"`
	// Problems lists every violated invariant; empty means the cell passed.
	Problems []string `json:"problems,omitempty"`
	Pass     bool     `json:"pass"`
}

// ChaosReport aggregates a chaos sweep.
type ChaosReport struct {
	SchemaVersion string      `json:"schema_version"`
	Seed          int64       `json:"seed"`
	Rate          float64     `json:"rate"`
	Workers       int         `json:"workers"`
	Cells         []ChaosCell `json:"cells"`
	// Failures counts cells with problems; Pass is Failures == 0.
	Failures int  `json:"failures"`
	Pass     bool `json:"pass"`
}

// JSON renders the report.
func (r *ChaosReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// conservativeEps is the relative slack allowed when asserting a degraded
// arrival is not below the clean one — float round-off from the guard-band
// multiplications and arrival summing, nothing more.
const conservativeEps = 1e-12

// chaosRun analyzes one case on a fresh analyzer with its own injector and
// returns the result plus the injector (for fire counts). The analyzer is
// fresh per run so faulted cache entries never leak between experiments.
func chaosRun(tech *mos.Tech, lib *devmodel.Library, c *AnalyzeCase, workers int, inj *faultinject.Injector) (*sta.Result, *faultinject.Injector, error) {
	a := sta.New(tech, lib, sta.Config{Workers: workers})
	res, err := a.AnalyzeContext(nil, sta.Request{
		Netlist: c.Netlist, Primary: c.Primary, Outputs: c.Outputs, Fault: inj,
	})
	return res, inj, err
}

// sameResult appends a problem for every deviation between two runs that
// the determinism invariant requires to be bit-for-bit identical, including
// the degradation diagnostics (same faults => same tiers).
func sameResult(label string, ref, got *sta.Result, problems []string) []string {
	problems = diffResults(label, ref, got, problems)
	if ref.TierCounts != got.TierCounts {
		problems = append(problems, fmt.Sprintf("%s: tier counts %v, want %v", label, got.TierCounts, ref.TierCounts))
	}
	if !reflect.DeepEqual(ref.EvalTier, got.EvalTier) {
		problems = append(problems, fmt.Sprintf("%s: eval tiers %v, want %v", label, got.EvalTier, ref.EvalTier))
	}
	if ref.PanicsRecovered != got.PanicsRecovered {
		problems = append(problems, fmt.Sprintf("%s: %d panics recovered, want %d", label, got.PanicsRecovered, ref.PanicsRecovered))
	}
	return problems
}

// runChaosCell executes one (case, class) experiment: a clean reference, a
// repeated serial faulted run (determinism at Workers=1), and a repeated
// parallel faulted run (determinism at Workers=N plus serial/parallel
// equivalence), then checks the invariants.
func runChaosCell(tech *mos.Tech, lib *devmodel.Library, c *AnalyzeCase, class faultinject.Class, cfg ChaosConfig) ChaosCell {
	cell := ChaosCell{Case: c.Name, Class: class.String()}
	inj := func() *faultinject.Injector { return faultinject.New(cfg.Seed).Enable(class, cfg.Rate) }

	clean, _, err := chaosRun(tech, lib, c, 1, nil)
	if err != nil {
		cell.Problems = append(cell.Problems, "clean run failed: "+err.Error())
		return cell
	}
	s1, in1, err := chaosRun(tech, lib, c, 1, inj())
	if err != nil {
		cell.Problems = append(cell.Problems, "faulted serial run failed (completeness): "+err.Error())
		return cell
	}
	s2, _, err := chaosRun(tech, lib, c, 1, inj())
	if err != nil {
		cell.Problems = append(cell.Problems, "faulted serial re-run failed: "+err.Error())
		return cell
	}
	p1, _, err := chaosRun(tech, lib, c, cfg.Workers, inj())
	if err != nil {
		cell.Problems = append(cell.Problems, "faulted parallel run failed (completeness): "+err.Error())
		return cell
	}
	p2, _, err := chaosRun(tech, lib, c, cfg.Workers, inj())
	if err != nil {
		cell.Problems = append(cell.Problems, "faulted parallel re-run failed: "+err.Error())
		return cell
	}

	cell.Fired = in1.FiredTotal()
	cell.Degraded = s1.Degraded
	for t, n := range s1.TierCounts {
		if n > 0 {
			if cell.Tiers == nil {
				cell.Tiers = map[string]int{}
			}
			cell.Tiers[sta.Tier(t).String()] = n
		}
	}

	// Completeness: every net the clean run timed is timed by the faulted
	// run too (the ladder never drops a direction the clean solver handled).
	for net := range clean.Arrivals {
		if _, ok := s1.Arrivals[net]; !ok {
			cell.Problems = append(cell.Problems, fmt.Sprintf("completeness: net %s missing from faulted arrivals", net))
		}
	}

	// Determinism: same seed => bit-for-bit identical results and tier
	// inventories, at the same and across worker counts.
	cell.Problems = sameResult("serial repeat", s1, s2, cell.Problems)
	cell.Problems = sameResult("parallel repeat", p1, p2, cell.Problems)
	cell.Problems = sameResult(fmt.Sprintf("workers 1 vs %d", cfg.Workers), s1, p1, cell.Problems)

	switch class {
	case faultinject.PivotBreakdown, faultinject.CacheStall:
		// Recovered-in-place faults: results must be bit-for-bit identical
		// to the clean run and nothing may degrade.
		cell.Problems = sameResult("faulted vs clean (recoverable class)", clean, s1, cell.Problems)
		if s1.Degraded != 0 {
			cell.Problems = append(cell.Problems, fmt.Sprintf("recoverable class degraded %d directions", s1.Degraded))
		}
	default:
		// Degrading faults: every arrival must be conservative — no net may
		// arrive earlier than in the clean analysis.
		for net, ref := range clean.Arrivals {
			got, ok := s1.Arrivals[net]
			if !ok {
				continue // already reported as a completeness problem
			}
			if got.Rise < ref.Rise*(1-conservativeEps) || got.Fall < ref.Fall*(1-conservativeEps) {
				cell.Problems = append(cell.Problems,
					fmt.Sprintf("conservatism: net %s degraded arrival (r %.6g, f %.6g) below clean (r %.6g, f %.6g)",
						net, got.Rise, got.Fall, ref.Rise, ref.Fall))
			}
		}
	}

	if cfg.Rate == 1 {
		// At rate 1 the injector must actually fire, and each degrading
		// class must land on the ladder tier it is designed to exercise.
		if cell.Fired == 0 {
			cell.Problems = append(cell.Problems, "injector never fired at rate 1")
		}
		expectTier := map[faultinject.Class]sta.Tier{
			faultinject.NRDivergence:     sta.TierSpice,  // kills both QWM tiers
			faultinject.BudgetExhaustion: sta.TierBisect, // aborts tier 0 only
			faultinject.Panic:            sta.TierBound,  // panics tiers 0-2
		}
		if want, ok := expectTier[class]; ok && s1.TierCounts[want] == 0 {
			cell.Problems = append(cell.Problems,
				fmt.Sprintf("expected tier %s to be exercised, tier counts %v", want, s1.TierCounts))
		}
	}

	cell.Pass = len(cell.Problems) == 0
	return cell
}

// RunChaos executes the chaos sweep: cfg.N generated analyze cases, each
// re-run under every fault class in the taxonomy.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	r := rand.New(rand.NewSource(cfg.Seed))
	rep := &ChaosReport{SchemaVersion: v1.SchemaVersion, Seed: cfg.Seed, Rate: cfg.Rate, Workers: cfg.Workers}
	for i := 0; i < cfg.N; i++ {
		c := GenAnalyzeCase(tech, r, i)
		for class := faultinject.Class(0); class < faultinject.NumClasses; class++ {
			if class.Network() {
				// Network classes fire at the remote-cache tier, which the
				// engine sweep does not arm; verify -remote gates them.
				continue
			}
			cell := runChaosCell(tech, lib, c, class, cfg)
			rep.Cells = append(rep.Cells, cell)
			if !cell.Pass {
				rep.Failures++
			}
			if cfg.Progress != nil {
				mark := "ok"
				if !cell.Pass {
					mark = "FAIL " + cell.Problems[0]
				}
				cfg.Progress("chaos %s/%s: fired %d, degraded %d %s",
					cell.Case, cell.Class, cell.Fired, cell.Degraded, mark)
			}
		}
	}
	rep.Pass = rep.Failures == 0
	return rep, nil
}
