package verify

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/qwm"
	"qwm/internal/wave"
)

// ForensicBundle describes one written forensic dump: which case it captured
// and which files landed in the directory. It is also serialized into the
// bundle itself (manifest.json) so a directory is self-describing.
type ForensicBundle struct {
	// Case identifies the re-run case and repeats its differential outcome.
	Case StageDiff `json:"case"`
	// Index is the case's position in the report's stage-case stream (the
	// regeneration replays the seeded generator Index+1 times).
	Index int `json:"index"`
	// Seed is the report seed the regeneration replayed.
	Seed int64 `json:"seed"`
	// Files lists the bundle files, relative to the bundle directory.
	Files []string `json:"files"`
}

// forensicWaveforms is the waveforms.json payload: the captured region trail
// and the piecewise-quadratic waveforms of every chain node.
type forensicWaveforms struct {
	Label         string        `json:"label"`
	VDD           float64       `json:"vdd"`
	SwitchAt      float64       `json:"switch_at"`
	Rising        bool          `json:"rising"`
	Events        []regionEvent `json:"events"`
	CriticalTimes []float64     `json:"critical_times"`
	Folded        []*wave.PWQ   `json:"folded"`
	Nodes         []*wave.PWQ   `json:"nodes"`
	Stats         qwm.Stats     `json:"stats"`
	TailTruncated bool          `json:"tail_truncated"`
}

// regionEvent is one committed region rendered for JSON (EventKind as text).
type regionEvent struct {
	Region  int     `json:"region"`
	Kind    string  `json:"kind"`
	Elem    int     `json:"elem,omitempty"`
	Target  float64 `json:"target,omitempty"`
	Tau     float64 `json:"tau"`
	Pending string  `json:"pending,omitempty"`
}

// WorstStageIndex picks the stage case a forensic dump should capture: the
// first engine-error case if any exist (an outright failure beats any finite
// error), otherwise the case with the largest delay error. Returns -1 when
// the report has no stage cases.
func WorstStageIndex(rep *Report) int {
	worst, worstErr := -1, -1.0
	for i, d := range rep.Stage {
		if d.Err != "" {
			return i
		}
		if d.DelayErrPct > worstErr {
			worst, worstErr = i, d.DelayErrPct
		}
	}
	return worst
}

// DumpWorst regenerates the report's worst stage case (replaying the seeded
// generator stream — stage cases are drawn first, so case i is reproduced by
// i+1 sequential draws) and re-runs it with per-region waveform capture
// enabled, writing a self-contained forensic bundle into dir:
//
//	manifest.json   bundle description (this ForensicBundle)
//	case.json       the differential outcome being investigated
//	waveforms.json  captured piecewise-quadratic waveforms + region trail
//	trace.json      the region decomposition as Chrome trace-event JSON
//	                (circuit picoseconds rendered as trace microseconds —
//	                load it in Perfetto and read µs as ps)
//	metrics.json    the report's metrics snapshot (when one was collected;
//	                cmd/verify -dump-worst always collects one)
//
// The directory is created if missing. Dump succeeds even for cases that
// failed their gate — that is the point — but returns an error if the
// regenerated case cannot be evaluated at all AND produced no events.
func DumpWorst(rep *Report, dir string) (*ForensicBundle, error) {
	idx := WorstStageIndex(rep)
	if idx < 0 {
		return nil, fmt.Errorf("verify: forensic dump: report has no stage cases")
	}
	return DumpStageCase(rep, idx, dir)
}

// DumpStageCase writes the forensic bundle for stage case idx of rep into
// dir. See DumpWorst for the bundle layout.
func DumpStageCase(rep *Report, idx int, dir string) (*ForensicBundle, error) {
	if idx < 0 || idx >= len(rep.Stage) {
		return nil, fmt.Errorf("verify: forensic dump: stage case %d out of range [0,%d)", idx, len(rep.Stage))
	}
	tech := mos.CMOSP35()
	c, err := regenStageCase(tech, rep.Seed, idx)
	if err != nil {
		return nil, err
	}
	if c.Name != rep.Stage[idx].Name {
		return nil, fmt.Errorf("verify: forensic dump: regenerated case %q does not match report case %q (seed mismatch?)",
			c.Name, rep.Stage[idx].Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("verify: forensic dump: %w", err)
	}

	b := &ForensicBundle{Case: rep.Stage[idx], Index: idx, Seed: rep.Seed}

	// Re-run with capture. The evaluation goes through qwm directly (not the
	// bench harness) so the full Result — waveforms included — is available
	// to attach to the capture record.
	sink := qwm.NewCaptureSink(1)
	sink.Begin(c.Name)
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: tech, Lib: devmodel.NewLibrary(tech),
		Stage: c.W.Stage, Path: c.W.Path,
		Inputs: c.W.Inputs, Loads: c.W.Loads, V0: c.W.IC,
	})
	var res *qwm.Result
	if err == nil {
		res, err = qwm.Evaluate(ch, qwm.Options{Events: sink})
	}
	if err != nil {
		sink.Abort(err)
	} else {
		sink.Commit(res)
	}
	rec := sink.Last()
	if rec == nil || (err != nil && len(rec.Events) == 0) {
		return nil, fmt.Errorf("verify: forensic dump: case %s produced no capturable state: %v", c.Name, err)
	}

	wf := &forensicWaveforms{
		Label:         rec.Label,
		VDD:           tech.VDD,
		SwitchAt:      c.W.SwitchAt,
		Rising:        c.W.Rising,
		CriticalTimes: rec.CriticalTimes,
		Folded:        rec.Folded,
		Nodes:         rec.Nodes,
		Stats:         rec.Stats,
		TailTruncated: rec.TailTruncated,
	}
	for _, ev := range rec.Events {
		wf.Events = append(wf.Events, regionEvent{
			Region: ev.Region, Kind: ev.Kind.String(), Elem: ev.Elem,
			Target: ev.Target, Tau: ev.Tau, Pending: ev.Pending,
		})
	}

	traceJSON, err := regionTraceJSON(rec, c.W.SwitchAt)
	if err != nil {
		return nil, fmt.Errorf("verify: forensic dump: trace: %w", err)
	}

	write := func(name string, data []byte) error {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("verify: forensic dump: write %s: %w", name, err)
		}
		b.Files = append(b.Files, name)
		return nil
	}
	caseJSON, _ := json.MarshalIndent(rep.Stage[idx], "", "  ")
	if err := write("case.json", caseJSON); err != nil {
		return nil, err
	}
	wfJSON, err := json.MarshalIndent(wf, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("verify: forensic dump: waveforms: %w", err)
	}
	if err := write("waveforms.json", wfJSON); err != nil {
		return nil, err
	}
	if err := write("trace.json", traceJSON); err != nil {
		return nil, err
	}
	if rep.Metrics != nil {
		mJSON, err := json.MarshalIndent(rep.Metrics, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("verify: forensic dump: metrics: %w", err)
		}
		if err := write("metrics.json", mJSON); err != nil {
			return nil, err
		}
	}
	manifest, _ := json.MarshalIndent(b, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644); err != nil {
		return nil, fmt.Errorf("verify: forensic dump: write manifest.json: %w", err)
	}
	b.Files = append([]string{"manifest.json"}, b.Files...)
	return b, nil
}

// regenStageCase replays the seeded generator stream up to and including
// case idx. Stage cases are the FIRST draws from the run's rand stream (see
// Run), so no other generator consumption has to be replayed.
func regenStageCase(tech *mos.Tech, seed int64, idx int) (*StageCase, error) {
	r := rand.New(rand.NewSource(seed))
	var c *StageCase
	var err error
	for i := 0; i <= idx; i++ {
		c, err = GenStageCase(tech, r, i)
		if err != nil {
			return nil, fmt.Errorf("verify: regenerate stage case %d: %w", i, err)
		}
	}
	return c, nil
}

// regionTraceJSON renders the captured region decomposition as Chrome
// trace-event JSON: one complete ("X") span per committed region on a single
// track, with circuit picoseconds mapped to trace microseconds (Perfetto has
// no picosecond unit; read its µs axis as ps). Region i spans from the
// previous region's τ′ (or the switching instant) to its own τ′.
func regionTraceJSON(rec *qwm.CaptureRecord, switchAt float64) ([]byte, error) {
	const pid, tid = 1, 0
	events := []obs.TraceEvent{
		{Name: "process_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": "qwm regions: " + rec.Label}},
		{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": "regions (1 trace µs = 1 circuit ps)"}},
	}
	prev := switchAt
	for _, ev := range rec.Events {
		start, end := prev, ev.Tau
		if end < start {
			start = end
		}
		ts := (start - switchAt) * 1e12 // circuit ps → trace µs
		dur := (end - start) * 1e12
		if dur <= 0 {
			dur = 1e-3 // render zero-length regions as 1 ns (≙ 1 fs) slivers
		}
		args := map[string]any{
			"kind":   ev.Kind.String(),
			"tau_ps": ev.Tau * 1e12,
		}
		switch ev.Kind {
		case qwm.RegionTurnOn:
			args["elem"] = ev.Elem
		case qwm.RegionCross:
			args["target_v"] = ev.Target
		case qwm.RegionTimeCap:
			args["pending"] = ev.Pending
		}
		d := dur
		events = append(events, obs.TraceEvent{
			Name: fmt.Sprintf("region %d: %s", ev.Region, ev.Kind),
			Cat:  "qwm", Ph: "X", TS: ts, Dur: &d, Pid: pid, Tid: tid,
			Args: args,
		})
		prev = ev.Tau
	}
	md := map[string]any{
		"source":    "qwm/internal/verify.DumpStageCase",
		"case":      rec.Label,
		"time_unit": "1 trace µs = 1 circuit ps",
	}
	return obs.ChromeTraceJSON(events, md)
}
