package verify

import (
	"fmt"
	"reflect"

	"qwm/internal/bench"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/obs"
	"qwm/internal/qwm"
	"qwm/internal/spice"
	"qwm/internal/sta"
	"qwm/internal/stages"
	"qwm/internal/wave"
)

// StageDiff is the outcome of one QWM-vs-SPICE per-stage comparison.
type StageDiff struct {
	Name string `json:"name"`
	K    int    `json:"k"`
	// Delays and slews in seconds; the reference is the adaptive
	// (LTE-controlled) trapezoidal transient of internal/spice.
	QWMDelay    float64 `json:"qwm_delay"`
	SpiceDelay  float64 `json:"spice_delay"`
	QWMSlew     float64 `json:"qwm_slew"`
	SpiceSlew   float64 `json:"spice_slew"`
	DelayErrPct float64 `json:"delay_err_pct"`
	AccuracyPct float64 `json:"accuracy_pct"`
	SlewErrPct  float64 `json:"slew_err_pct"`
	// Pass is DelayErrPct <= the configured tolerance and Err == "".
	Pass bool   `json:"pass"`
	Err  string `json:"err,omitempty"`
}

// RunStageDiff evaluates one generated stage with both engines and gates
// the delay error against tolPct (wave.DelayErrorPct, the paper's accuracy
// metric).
func RunStageDiff(h *bench.Harness, c *StageCase, tolPct float64) StageDiff {
	d := StageDiff{Name: c.Name, K: c.K}
	q, err := h.RunQWM(c.W, qwm.Options{})
	if err != nil {
		d.Err = "qwm: " + err.Error()
		return d
	}
	s, err := runSpiceRef(h, c.W)
	if err != nil {
		d.Err = "spice: " + err.Error()
		return d
	}
	d.QWMDelay, d.SpiceDelay = q.Delay, s.Delay
	d.QWMSlew, d.SpiceSlew = q.Slew, s.Slew
	d.DelayErrPct = wave.DelayErrorPct(q.Delay, s.Delay)
	d.AccuracyPct = wave.AccuracyPct(q.Delay, s.Delay)
	if q.Slew > 0 && s.Slew > 0 {
		d.SlewErrPct = wave.DelayErrorPct(q.Slew, s.Slew)
	}
	d.Pass = d.DelayErrPct <= tolPct
	return d
}

// runSpiceRef runs the adaptive (LTE-controlled) trapezoidal baseline on a
// workload and measures the output delay and slew. The adaptive stepper
// reproduces the fixed-1 ps reference within ~2 % at a fraction of the time
// points (see DESIGN.md), which keeps a 200-case sweep tractable; HMax is
// clamped so coarse late-tail steps cannot blur the measured edge.
func runSpiceRef(h *bench.Harness, w *stages.Workload) (*bench.EngineRun, error) {
	s, err := spice.New(w.Netlist, h.Tech, false)
	if err != nil {
		return nil, err
	}
	res, err := s.TransientAdaptive(spice.AdaptiveOptions{
		TStop:       w.TStop,
		HMax:        20e-12,
		IC:          w.IC,
		RecordNodes: []string{w.Output},
	})
	if err != nil {
		return nil, err
	}
	out, err := res.Waveform(w.Output)
	if err != nil {
		return nil, err
	}
	d, err := wave.Delay50(out, w.SwitchAt, h.Tech.VDD, w.Rising)
	if err != nil {
		return nil, err
	}
	slew, _ := wave.Slew(out, h.Tech.VDD, w.Rising)
	return &bench.EngineRun{Delay: d, Slew: slew, Output: out, Steps: res.Stats.Steps}, nil
}

// AnalyzeDiff is the outcome of one full-Analyze equivalence check:
// cached-vs-uncached and serial-vs-parallel runs must agree bit for bit.
type AnalyzeDiff struct {
	Name string `json:"name"`
	// Mismatches lists every deviation found; empty means bit-for-bit
	// equivalence across all variants.
	Mismatches []string `json:"mismatches,omitempty"`
	Pass       bool     `json:"pass"`
	Err        string   `json:"err,omitempty"`
}

// analyze runs one case on a fresh analyzer with the given worker count,
// recording into metrics when non-nil.
func analyze(tech *mos.Tech, lib *devmodel.Library, c *AnalyzeCase, workers int, metrics *obs.Registry) (*sta.Analyzer, *sta.Result, error) {
	a := sta.New(tech, lib, sta.Config{Workers: workers, Metrics: metrics})
	res, err := a.AnalyzeContext(nil, sta.Request{Netlist: c.Netlist, Primary: c.Primary, Outputs: c.Outputs})
	return a, res, err
}

// diffResults appends a description of every field where got deviates from
// ref. Arrival comparison is exact (bit-for-bit float equality), as the
// engine's determinism guarantee promises.
func diffResults(label string, ref, got *sta.Result, out []string) []string {
	if !reflect.DeepEqual(got.Arrivals, ref.Arrivals) {
		for net, r := range ref.Arrivals {
			if g, ok := got.Arrivals[net]; !ok || g != r {
				out = append(out, fmt.Sprintf("%s: arrival[%s] = %+v, want %+v", label, net, got.Arrivals[net], r))
			}
		}
		for net := range got.Arrivals {
			if _, ok := ref.Arrivals[net]; !ok {
				out = append(out, fmt.Sprintf("%s: extra arrival[%s]", label, net))
			}
		}
	}
	if got.WorstArrival != ref.WorstArrival || got.WorstOutput != ref.WorstOutput {
		out = append(out, fmt.Sprintf("%s: worst %g@%s, want %g@%s", label,
			got.WorstArrival, got.WorstOutput, ref.WorstArrival, ref.WorstOutput))
	}
	if !reflect.DeepEqual(got.CriticalPath, ref.CriticalPath) {
		out = append(out, fmt.Sprintf("%s: critical path %v, want %v", label, got.CriticalPath, ref.CriticalPath))
	}
	return out
}

// RunAnalyzeDiff checks one generated tree across three variants against
// the cold serial reference: a warm re-run on the same analyzer (cache hits
// only), a cold parallel run, and a warm parallel re-run.
func RunAnalyzeDiff(tech *mos.Tech, lib *devmodel.Library, c *AnalyzeCase, workers int) AnalyzeDiff {
	return RunAnalyzeDiffObserved(tech, lib, c, workers, nil)
}

// RunAnalyzeDiffObserved is RunAnalyzeDiff with an optional metrics
// registry attached to every analyzer it constructs, so a verification
// sweep doubles as an observability exercise of the engine.
func RunAnalyzeDiffObserved(tech *mos.Tech, lib *devmodel.Library, c *AnalyzeCase, workers int, metrics *obs.Registry) AnalyzeDiff {
	d := AnalyzeDiff{Name: c.Name}
	serial, ref, err := analyze(tech, lib, c, 1, metrics)
	if err != nil {
		d.Err = err.Error()
		return d
	}
	warm, err := serial.AnalyzeContext(nil, sta.Request{Netlist: c.Netlist, Primary: c.Primary, Outputs: c.Outputs})
	if err != nil {
		d.Err = "warm: " + err.Error()
		return d
	}
	d.Mismatches = diffResults("cached-vs-uncached", ref, warm, d.Mismatches)
	if warm.StagesEvaluated != 0 {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("warm re-run evaluated %d stages, want 0", warm.StagesEvaluated))
	}

	par, pres, err := analyze(tech, lib, c, workers, metrics)
	if err != nil {
		d.Err = "parallel: " + err.Error()
		return d
	}
	d.Mismatches = diffResults("serial-vs-parallel", ref, pres, d.Mismatches)
	if pres.StagesEvaluated != ref.StagesEvaluated {
		d.Mismatches = append(d.Mismatches, fmt.Sprintf("parallel evaluated %d stages, serial %d", pres.StagesEvaluated, ref.StagesEvaluated))
	}
	pwarm, err := par.AnalyzeContext(nil, sta.Request{Netlist: c.Netlist, Primary: c.Primary, Outputs: c.Outputs})
	if err != nil {
		d.Err = "parallel warm: " + err.Error()
		return d
	}
	d.Mismatches = diffResults("parallel-cached", ref, pwarm, d.Mismatches)

	d.Pass = len(d.Mismatches) == 0
	return d
}

// RunSiblingDiff is the aliasing trap: analyze the light-load tree, then the
// structurally identical heavy-load tree on the SAME analyzer, and compare
// the heavy result bit-for-bit against a fresh uncached analyzer. A cache
// key that omits the load digest serves the heavy tree from the light
// tree's entries and fails here; it also checks the loads actually matter
// (the two trees must not produce identical arrivals).
func RunSiblingDiff(tech *mos.Tech, lib *devmodel.Library, p *SiblingPair, workers int) AnalyzeDiff {
	return RunSiblingDiffObserved(tech, lib, p, workers, nil)
}

// RunSiblingDiffObserved is RunSiblingDiff with an optional metrics
// registry attached to the analyzers it constructs.
func RunSiblingDiffObserved(tech *mos.Tech, lib *devmodel.Library, p *SiblingPair, workers int, metrics *obs.Registry) AnalyzeDiff {
	d := AnalyzeDiff{Name: p.Name}
	shared := sta.New(tech, lib, sta.Config{Workers: workers, Metrics: metrics})
	lightRes, err := shared.AnalyzeContext(nil, sta.Request{Netlist: p.A.Netlist, Primary: p.A.Primary, Outputs: p.A.Outputs})
	if err != nil {
		d.Err = "light: " + err.Error()
		return d
	}
	heavyShared, err := shared.AnalyzeContext(nil, sta.Request{Netlist: p.B.Netlist, Primary: p.B.Primary, Outputs: p.B.Outputs})
	if err != nil {
		d.Err = "heavy (shared cache): " + err.Error()
		return d
	}
	_, heavyRef, err := analyze(tech, lib, p.B, 1, metrics)
	if err != nil {
		d.Err = "heavy (fresh): " + err.Error()
		return d
	}
	d.Mismatches = diffResults("shared-cache-vs-fresh", heavyRef, heavyShared, d.Mismatches)
	if p.Distinct && reflect.DeepEqual(lightRes.Arrivals, heavyShared.Arrivals) {
		d.Mismatches = append(d.Mismatches, "heavy-load arrivals identical to light-load arrivals (loads ignored)")
	}
	d.Pass = len(d.Mismatches) == 0
	return d
}
