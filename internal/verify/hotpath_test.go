package verify

import (
	"reflect"
	"testing"

	"qwm/internal/bench"
	"qwm/internal/mos"
)

// TestHotPathDiff runs the four-leg hot-path differential on one generated
// wide case: features-off bit-identity, features-on bounded error with the
// reduction and memoization demonstrably active, serial/parallel identity,
// and the class-level load-aliasing trap. It also pins determinism: running
// the identical case twice yields the identical record.
func TestHotPathDiff(t *testing.T) {
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		t.Fatal(err)
	}
	c, err := GenHotPathCase(tech, newRand(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	d := RunHotPathDiff(tech, h.Lib, c, 4, 10)
	if d.Err != "" {
		t.Fatal(d.Err)
	}
	if !d.Pass {
		t.Fatalf("hot-path diff failed: %v", d.Mismatches)
	}
	if d.ReducedNodes == 0 {
		t.Error("reduction reported no removed nodes")
	}
	if d.ClassCount == 0 || d.ClassHits == 0 {
		t.Errorf("memo accounting empty: classes %d, hits %d", d.ClassCount, d.ClassHits)
	}
	if d.MaxErrPct > 10 {
		t.Errorf("features-on error %.2f%% over tolerance", d.MaxErrPct)
	}

	c2, err := GenHotPathCase(tech, newRand(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	d2 := RunHotPathDiff(tech, h.Lib, c2, 4, 10)
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("hot-path diff not reproducible:\n%+v\nvs\n%+v", d, d2)
	}
}
