package verify

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"qwm/internal/obs"
)

// TestDumpWorstBundle runs a tiny sweep with metrics attached, dumps the
// worst case, and checks the bundle is complete, valid JSON, and matches the
// report's worst case.
func TestDumpWorstBundle(t *testing.T) {
	if testing.Short() {
		t.Skip("forensic dump runs a SPICE-differential sweep")
	}
	reg := obs.NewRegistry()
	rep, err := Run(Config{Seed: 11, N: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	b, err := DumpWorst(rep, dir)
	if err != nil {
		t.Fatal(err)
	}

	idx := WorstStageIndex(rep)
	if b.Index != idx || b.Case.Name != rep.Stage[idx].Name || b.Seed != rep.Seed {
		t.Fatalf("bundle header %+v does not match report worst case %d (%s)", b, idx, rep.Stage[idx].Name)
	}

	want := []string{"manifest.json", "case.json", "waveforms.json", "trace.json", "metrics.json"}
	for _, name := range want {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
	}

	// waveforms.json must carry a non-trivial region trail and per-node
	// piecewise-quadratic waveforms.
	raw, _ := os.ReadFile(filepath.Join(dir, "waveforms.json"))
	var wf struct {
		Label  string `json:"label"`
		Events []struct {
			Kind string  `json:"kind"`
			Tau  float64 `json:"tau"`
		} `json:"events"`
		Folded []struct {
			Segs []map[string]float64 `json:"Segs"`
		} `json:"folded"`
		Stats struct {
			Regions int `json:"Regions"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(raw, &wf); err != nil {
		t.Fatal(err)
	}
	if wf.Label != b.Case.Name {
		t.Fatalf("waveform label %q, want %q", wf.Label, b.Case.Name)
	}
	if len(wf.Events) == 0 || len(wf.Events) != wf.Stats.Regions {
		t.Fatalf("captured %d events for %d regions", len(wf.Events), wf.Stats.Regions)
	}
	if len(wf.Folded) == 0 || len(wf.Folded[len(wf.Folded)-1].Segs) == 0 {
		t.Fatal("output waveform has no segments")
	}

	// trace.json must be a Chrome trace: object form with one X event per
	// captured region plus metadata events.
	raw, _ = os.ReadFile(filepath.Join(dir, "trace.json"))
	var tr struct {
		TraceEvents []struct {
			Ph  string   `json:"ph"`
			Dur *float64 `json:"dur"`
		} `json:"traceEvents"`
		Metadata map[string]any `json:"metadata"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	var x int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
			if ev.Dur == nil || *ev.Dur <= 0 {
				t.Fatal("X event without positive dur")
			}
		case "M":
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if x != wf.Stats.Regions {
		t.Fatalf("trace has %d region spans, want %d", x, wf.Stats.Regions)
	}
	if tr.Metadata["case"] != b.Case.Name {
		t.Fatalf("trace metadata case = %v", tr.Metadata["case"])
	}
}

func TestWorstStageIndex(t *testing.T) {
	rep := &Report{Stage: []StageDiff{
		{Name: "a", DelayErrPct: 1.2},
		{Name: "b", DelayErrPct: 7.5},
		{Name: "c", DelayErrPct: 0.3},
	}}
	if got := WorstStageIndex(rep); got != 1 {
		t.Fatalf("worst = %d, want 1", got)
	}
	rep.Stage[2].Err = "qwm: diverged"
	if got := WorstStageIndex(rep); got != 2 {
		t.Fatalf("worst with engine error = %d, want 2", got)
	}
	if got := WorstStageIndex(&Report{}); got != -1 {
		t.Fatalf("empty report worst = %d, want -1", got)
	}
}
