package verify

import (
	"encoding/json"
	"math/rand"
	"testing"

	"qwm/internal/bench"
	"qwm/internal/mos"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestRunSmall is the short-budget go test entry for the differential
// harness: a 10-case sweep must pass every gate the full cmd/verify run
// enforces — median QWM-vs-SPICE accuracy >= 95 %, zero cached/uncached or
// serial/parallel mismatches, zero engine errors — and be reproducible.
func TestRunSmall(t *testing.T) {
	rep, err := Run(Config{Seed: 1, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if !s.Pass {
		t.Fatalf("verification failed: %+v", s)
	}
	if s.MedianAccuracyPct < 95 {
		t.Errorf("median accuracy %.2f%% < 95%%", s.MedianAccuracyPct)
	}
	if s.AnalyzeMismatches != 0 || s.SiblingMismatches != 0 {
		t.Errorf("equivalence mismatches: analyze %d, sibling %d", s.AnalyzeMismatches, s.SiblingMismatches)
	}
	if s.StageErrors != 0 {
		t.Errorf("%d engine errors", s.StageErrors)
	}
	// The report must serialize.
	b, err := rep.JSON()
	if err != nil || len(b) == 0 {
		t.Fatalf("report JSON failed: %v", err)
	}
	var round Report
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}

	// Reproducibility: the same seed regenerates the identical report.
	rep2, err := Run(Config{Seed: 1, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Stage) != len(rep.Stage) {
		t.Fatalf("case count changed across runs")
	}
	for i := range rep.Stage {
		if rep.Stage[i] != rep2.Stage[i] {
			t.Errorf("case %d not reproducible: %+v vs %+v", i, rep.Stage[i], rep2.Stage[i])
		}
	}
}

// TestSiblingDiffCatchesLoadBlindCache demonstrates the harness's purpose:
// the sibling runner must flag a timing source whose cache ignores loads.
// We simulate the bug by checking the runner's sensitivity — the heavy and
// light trees must produce measurably different arrivals, which is exactly
// the signal a load-blind cache destroys.
func TestSiblingDiffCatchesLoadBlindCache(t *testing.T) {
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		t.Fatal(err)
	}
	r := newRand(7)
	p := GenSiblingPair(tech, r, 0)
	d := RunSiblingDiff(tech, h.Lib, p, 4)
	if d.Err != "" {
		t.Fatal(d.Err)
	}
	if !d.Pass {
		t.Fatalf("sibling diff failed on the fixed engine: %v", d.Mismatches)
	}
}

// TestGeneratorDeterminism pins that the generator depends only on the rand
// stream: two identically seeded streams produce identical netlists.
func TestGeneratorDeterminism(t *testing.T) {
	tech := mos.CMOSP35()
	a, err := GenStageCase(tech, newRand(42), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenStageCase(tech, newRand(42), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || a.K != b.K {
		t.Fatalf("case identity differs: %s/%d vs %s/%d", a.Name, a.K, b.Name, b.K)
	}
	if len(a.W.Netlist.Transistors) != len(b.W.Netlist.Transistors) {
		t.Fatal("transistor counts differ")
	}
	for i := range a.W.Netlist.Transistors {
		ta, tb := a.W.Netlist.Transistors[i], b.W.Netlist.Transistors[i]
		if ta.W != tb.W || ta.L != tb.L {
			t.Errorf("device %d geometry differs: %g/%g vs %g/%g", i, ta.W, ta.L, tb.W, tb.L)
		}
	}
}
