package verify

import (
	"fmt"
	"math/rand"

	"qwm/internal/bench"
	"qwm/internal/mos"
	"qwm/internal/obs"
)

// Config parameterizes one differential-verification run.
type Config struct {
	// Seed makes the whole run reproducible: identical (Seed, N) always
	// generates identical cases and identical reports.
	Seed int64
	// N is the number of generated single-stage QWM-vs-SPICE cases.
	N int
	// TolPct is the per-case delay-error tolerance in percent (cases above
	// it are counted as tolerance failures). Default 10.
	TolPct float64
	// AnalyzeN and PairN are the full-Analyze equivalence and
	// sibling-aliasing case counts; 0 derives them from N (N/5 and N/10,
	// floors 4 and 2).
	AnalyzeN, PairN int
	// HotPathN is the hot-path feature differential case count (reduction
	// off ⇒ bit-identical, on ⇒ bounded error, memoization never crosses
	// the class-level aliasing trap); 0 derives it from N (N/10, floor 2).
	HotPathN int
	// Workers is the parallel worker count for the serial-vs-parallel
	// differential. Default 8.
	Workers int
	// Progress, when set, receives one line per completed case.
	Progress func(format string, args ...any)
	// Metrics, when set, is attached to every sta.Analyzer the equivalence
	// differentials construct; the aggregated snapshot is embedded in the
	// report (Report.Metrics). Nil disables metric collection.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 50
	}
	if c.TolPct <= 0 {
		c.TolPct = 10
	}
	if c.AnalyzeN <= 0 {
		c.AnalyzeN = c.N / 5
		if c.AnalyzeN < 4 {
			c.AnalyzeN = 4
		}
	}
	if c.PairN <= 0 {
		c.PairN = c.N / 10
		if c.PairN < 2 {
			c.PairN = 2
		}
	}
	if c.HotPathN <= 0 {
		c.HotPathN = c.N / 10
		if c.HotPathN < 2 {
			c.HotPathN = 2
		}
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	return c
}

// Run executes the three differentials — per-stage QWM-vs-SPICE,
// cached-vs-uncached Analyze, serial-vs-parallel Analyze (plus the
// shared-cache sibling aliasing trap) — and returns the finalized report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		return nil, fmt.Errorf("verify: harness: %w", err)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{Seed: cfg.Seed, N: cfg.N, TolPct: cfg.TolPct}

	for i := 0; i < cfg.N; i++ {
		c, err := GenStageCase(tech, r, i)
		if err != nil {
			return nil, fmt.Errorf("verify: generate stage case %d: %w", i, err)
		}
		d := RunStageDiff(h, c, cfg.TolPct)
		rep.Stage = append(rep.Stage, d)
		if cfg.Progress != nil {
			cfg.Progress("stage %s: err %.2f%% (qwm %.1f ps, spice %.1f ps) %s",
				d.Name, d.DelayErrPct, d.QWMDelay*1e12, d.SpiceDelay*1e12, passMark(d.Pass, d.Err))
		}
	}
	for i := 0; i < cfg.AnalyzeN; i++ {
		c := GenAnalyzeCase(tech, r, i)
		d := RunAnalyzeDiffObserved(tech, h.Lib, c, cfg.Workers, cfg.Metrics)
		rep.Analyze = append(rep.Analyze, d)
		if cfg.Progress != nil {
			cfg.Progress("analyze %s: %s", d.Name, passMark(d.Pass, d.Err))
		}
	}
	for i := 0; i < cfg.PairN; i++ {
		p := GenSiblingPair(tech, r, i)
		d := RunSiblingDiffObserved(tech, h.Lib, p, cfg.Workers, cfg.Metrics)
		rep.Sibling = append(rep.Sibling, d)
		if cfg.Progress != nil {
			cfg.Progress("sibling %s: %s", d.Name, passMark(d.Pass, d.Err))
		}
	}
	for i := 0; i < cfg.HotPathN; i++ {
		c, err := GenHotPathCase(tech, r, i)
		if err != nil {
			return nil, fmt.Errorf("verify: generate hot-path case %d: %w", i, err)
		}
		d := RunHotPathDiffObserved(tech, h.Lib, c, cfg.Workers, cfg.TolPct, cfg.Metrics)
		rep.HotPath = append(rep.HotPath, d)
		if cfg.Progress != nil {
			cfg.Progress("hotpath %s: err %.2f%% (reduced %d, class hits %d) %s",
				d.Name, d.MaxErrPct, d.ReducedNodes, d.ClassHits, passMark(d.Pass, d.Err))
		}
	}
	rep.Finalize()
	if cfg.Metrics != nil {
		snap := cfg.Metrics.Snapshot()
		rep.Metrics = &snap
	}
	return rep, nil
}

func passMark(pass bool, errMsg string) string {
	if errMsg != "" {
		return "ERROR " + errMsg
	}
	if pass {
		return "ok"
	}
	return "FAIL"
}
