package verify

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"qwm/internal/api/v1"
	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/faultinject"
	"qwm/internal/mos"
	"qwm/internal/reduce"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

// ECOConfig parameterizes the randomized edit-sequence differential: a
// netlist is mutated step by step (transistor resizes, load changes, buffer
// insertions) and after every edit the persistent incremental analyzers —
// serial and parallel — are checked bit-for-bit against the from-scratch
// schedule, across the feature matrix (plain, memo, interp, reduce, and a
// rate-1 NR-divergence chaos class that forces the spice tier). Each step
// also gates dirty-cone minimality: the incremental run may not re-evaluate
// more stages than the edit's structural fanout closure, and a no-op re-run
// must re-evaluate nothing.
//
// The from-scratch reference is a PERSISTENT non-incremental analyzer
// running the same edit sequence, not a fresh analyzer per step. Raw
// (non-memo) delay-cache entries are keyed by 5 ps slew bucket but evaluated
// at the first-seen exact slew, so any warm re-analysis — incremental or not
// — can differ from a cold analyzer in low-order bits when an edit moves a
// slew within its bucket; that is a property of the cache, present since
// before ECO existed. Holding the reference's cache history identical to the
// incremental analyzers' isolates exactly what this sweep must prove: the
// Incremental flag changes scheduling only, never results. Memo-mode entries
// are pure functions of their key (bucket-floor snap / boundary interp), so
// memo variants are additionally checked against a cold per-step analyzer.
type ECOConfig struct {
	// Seed drives the edit sequence; identical seeds reproduce identical
	// sweeps.
	Seed int64
	// Edits is the number of mutation steps per (workload, variant)
	// sequence (default 6).
	Edits int
	// Workers is the parallel incremental analyzer's worker count checked
	// against the serial one (default 8).
	Workers int
	// Progress, when set, receives one line per completed step.
	Progress func(format string, args ...any)
}

func (c ECOConfig) withDefaults() ECOConfig {
	if c.Edits <= 0 {
		c.Edits = 6
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	return c
}

// ECOStep is the outcome of one edit step.
type ECOStep struct {
	Edit string `json:"edit"`
	// Dirty/Skipped/EarlyStops are the serial incremental run's ECO stats;
	// ConeBound is the structural fanout-closure size the dirty count is
	// gated against.
	Dirty      int `json:"dirty"`
	Skipped    int `json:"skipped"`
	EarlyStops int `json:"early_stops"`
	ConeBound  int `json:"cone_bound"`
}

// ECOSequence is one (workload, variant) edit sequence.
type ECOSequence struct {
	Workload string    `json:"workload"`
	Variant  string    `json:"variant"`
	Steps    []ECOStep `json:"steps"`
	Problems []string  `json:"problems,omitempty"`
	Pass     bool      `json:"pass"`
}

// ECOReport aggregates an ECO sweep.
type ECOReport struct {
	SchemaVersion string        `json:"schema_version"`
	Seed          int64         `json:"seed"`
	Workers       int           `json:"workers"`
	Sequences     []ECOSequence `json:"sequences"`
	Failures      int           `json:"failures"`
	Pass          bool          `json:"pass"`
}

// JSON renders the report.
func (r *ECOReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// ecoVariant is one feature configuration of the sweep matrix.
type ecoVariant struct {
	name string
	red  reduce.Config
	memo sta.MemoConfig
	// chaos arms a rate-1 NR-divergence injector on every analysis, forcing
	// each evaluation down to the spice tier — the cross-member/replay shape
	// that exposed the PR 6 TierSpice canonicalization residual.
	chaos bool
}

func ecoVariants() []ecoVariant {
	return []ecoVariant{
		{name: "plain"},
		{name: "memo", memo: sta.MemoConfig{Enabled: true}},
		{name: "interp", memo: sta.MemoConfig{Enabled: true, Interp: true}},
		{name: "reduce", red: reduce.Config{Enabled: true}},
		{name: "chaos-divergence", memo: sta.MemoConfig{Enabled: true}, chaos: true},
	}
}

// ecoWorkload builds one editable netlist case by name.
func ecoWorkload(tech *mos.Tech, name string) (*AnalyzeCase, error) {
	var (
		nl   *circuit.Netlist
		ins  []string
		outs []string
		err  error
	)
	switch name {
	case "decoder":
		nl, ins, outs, err = stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
	case "wide":
		nl, ins, outs, err = stages.WideNetlist(tech, 4, 6, 1e-6, 10e-15)
	default:
		err = fmt.Errorf("unknown eco workload %q", name)
	}
	if err != nil {
		return nil, err
	}
	primary := map[string]sta.Arrival{}
	for _, in := range ins {
		primary[in] = sta.Arrival{}
	}
	return &AnalyzeCase{Name: name, Netlist: nl, Primary: primary, Outputs: outs}, nil
}

// ecoEdit mutates the netlist in place and returns a label plus the seed
// nets whose stages the edit can structurally touch (device channel nodes,
// moved gate loads, new buffer nets). The seed nets feed the fanout-closure
// bound the dirty count is checked against.
func ecoEdit(nl *circuit.Netlist, r *rand.Rand, tech *mos.Tech, step int) (string, []string) {
	switch r.Intn(3) {
	case 0: // resize
		t := nl.Transistors[r.Intn(len(nl.Transistors))]
		f := 0.7 + 0.8*r.Float64()
		t.W *= f
		return fmt.Sprintf("resize %s x%.3f", t.Name, f),
			[]string{t.Drain, t.Source, t.Gate}
	case 1: // load change
		if len(nl.Capacitors) == 0 {
			return "load-noop", nil
		}
		c := nl.Capacitors[r.Intn(len(nl.Capacitors))]
		f := 0.8 + 0.8*r.Float64()
		c.C *= f
		return fmt.Sprintf("load %s x%.3f", c.Name, f), []string{c.A}
	default: // buffer insert: g -> inv -> inv -> t.Gate
		t := nl.Transistors[r.Intn(len(nl.Transistors))]
		g := t.Gate
		b1 := fmt.Sprintf("eb%d_1", step)
		b2 := fmt.Sprintf("eb%d_2", step)
		addInv := func(in, out string, i int) {
			nl.AddTransistor(&circuit.Transistor{
				Name: fmt.Sprintf("mne%d_%d", step, i), Kind: circuit.KindNMOS,
				Drain: out, Gate: in, Source: "0", Body: "0", W: 1e-6, L: tech.LMin,
			})
			nl.AddTransistor(&circuit.Transistor{
				Name: fmt.Sprintf("mpe%d_%d", step, i), Kind: circuit.KindPMOS,
				Drain: out, Gate: in, Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin,
			})
		}
		addInv(g, b1, 0)
		addInv(b1, b2, 1)
		t.Gate = b2
		return fmt.Sprintf("buffer %s: %s -> %s", t.Name, g, b2),
			[]string{g, b1, b2, t.Drain, t.Source}
	}
}

// coneBound computes the structural fanout closure of the seed nets: every
// stage owning or loading a seed net, plus everything transitively
// downstream. The incremental run must not re-evaluate more stages than
// this (it may re-evaluate fewer — epsilon-free runs still early-stop when
// an arrival reproduces bitwise).
func coneBound(nl *circuit.Netlist, outs []string, seeds []string) int {
	sts := circuit.ExtractStages(nl, outs)
	seed := map[string]bool{}
	for _, s := range seeds {
		seed[circuit.CanonName(s)] = true
	}
	producer := map[string]int{}
	for i, st := range sts {
		for _, o := range st.Outputs {
			producer[o] = i
		}
	}
	dirty := make([]bool, len(sts))
	for i, st := range sts {
		for _, nd := range st.Nodes {
			if seed[nd] {
				dirty[i] = true
			}
		}
	}
	// Transitive fanout: iterate to fixpoint (stage count is small).
	for changed := true; changed; {
		changed = false
		for i, st := range sts {
			if dirty[i] {
				continue
			}
			for _, in := range st.Inputs {
				if p, ok := producer[in]; ok && dirty[p] {
					dirty[i], changed = true, true
					break
				}
			}
		}
	}
	n := 0
	for _, d := range dirty {
		if d {
			n++
		}
	}
	return n
}

// ecoAnalyzer builds one persistent analyzer for a variant.
func ecoAnalyzer(tech *mos.Tech, lib *devmodel.Library, v ecoVariant, workers int) *sta.Analyzer {
	a := sta.New(tech, lib)
	a.Workers = workers
	a.Reduction = v.red
	a.Memo = v.memo
	return a
}

// runECOSequence drives one (workload, variant) edit sequence.
func runECOSequence(tech *mos.Tech, lib *devmodel.Library, workload string, v ecoVariant, cfg ECOConfig) ECOSequence {
	seq := ECOSequence{Workload: workload, Variant: v.name}
	c, err := ecoWorkload(tech, workload)
	if err != nil {
		seq.Problems = append(seq.Problems, err.Error())
		return seq
	}
	r := rand.New(rand.NewSource(cfg.Seed + int64(len(workload))*7919))

	incSerial := ecoAnalyzer(tech, lib, v, 1)
	incParallel := ecoAnalyzer(tech, lib, v, cfg.Workers)
	scratch := ecoAnalyzer(tech, lib, v, 1)

	inj := func() *faultinject.Injector {
		if !v.chaos {
			return nil
		}
		return faultinject.New(cfg.Seed).Enable(faultinject.NRDivergence, 1)
	}
	analyze := func(a *sta.Analyzer, incremental bool) (*sta.Result, error) {
		return a.AnalyzeContext(nil, sta.Request{
			Netlist: c.Netlist, Primary: c.Primary, Outputs: c.Outputs,
			Fault: inj(), Incremental: incremental,
		})
	}

	step := func(label string, seeds []string, bound int) bool {
		ref, err := analyze(scratch, false)
		if err != nil {
			seq.Problems = append(seq.Problems, label+": scratch run failed: "+err.Error())
			return false
		}
		s, err := analyze(incSerial, true)
		if err != nil {
			seq.Problems = append(seq.Problems, label+": incremental serial run failed: "+err.Error())
			return false
		}
		p, err := analyze(incParallel, true)
		if err != nil {
			seq.Problems = append(seq.Problems, label+": incremental parallel run failed: "+err.Error())
			return false
		}
		seq.Problems = sameResult(label+": incremental vs scratch", ref, s, seq.Problems)
		if v.memo.Enabled {
			cold, err := analyze(ecoAnalyzer(tech, lib, v, 1), false)
			if err != nil {
				seq.Problems = append(seq.Problems, label+": cold scratch run failed: "+err.Error())
				return false
			}
			seq.Problems = sameResult(label+": incremental vs cold scratch", cold, s, seq.Problems)
		}
		seq.Problems = sameResult(fmt.Sprintf("%s: incremental workers 1 vs %d", label, cfg.Workers), s, p, seq.Problems)
		st := ECOStep{Edit: label, Dirty: s.ECO.DirtyStages, Skipped: s.ECO.SkippedStages,
			EarlyStops: s.ECO.EarlyStops, ConeBound: bound}
		seq.Steps = append(seq.Steps, st)
		if seeds != nil && st.Dirty > bound {
			seq.Problems = append(seq.Problems,
				fmt.Sprintf("%s: dirty-cone minimality: %d stages dirty, structural closure is %d", label, st.Dirty, bound))
		}
		if cfg.Progress != nil {
			cfg.Progress("eco %s/%s %s: dirty %d, skipped %d, bound %d",
				workload, v.name, label, st.Dirty, st.Skipped, bound)
		}
		return true
	}

	// Baseline: the first incremental call has no memo — everything dirty.
	if !step("baseline", nil, 0) {
		return seq
	}
	for i := 0; i < cfg.Edits; i++ {
		label, seeds := ecoEdit(c.Netlist, r, tech, i)
		bound := coneBound(c.Netlist, c.Outputs, seeds)
		if !step(fmt.Sprintf("step %d: %s", i, label), seeds, bound) {
			return seq
		}
		// Every other step, a no-op re-run: nothing changed, so nothing may
		// be re-evaluated or re-computed.
		if i%2 == 1 {
			res, err := analyze(incSerial, true)
			if err != nil {
				seq.Problems = append(seq.Problems, "no-op rerun failed: "+err.Error())
				return seq
			}
			if res.ECO.DirtyStages != 0 {
				seq.Problems = append(seq.Problems,
					fmt.Sprintf("no-op rerun after step %d dirtied %d stages", i, res.ECO.DirtyStages))
			}
			if res.StagesEvaluated != 0 {
				seq.Problems = append(seq.Problems,
					fmt.Sprintf("no-op rerun after step %d paid %d cache misses", i, res.StagesEvaluated))
			}
		}
	}
	seq.Pass = len(seq.Problems) == 0
	return seq
}

// RunECO executes the full ECO differential sweep: every workload × variant
// edit sequence.
func RunECO(cfg ECOConfig) (*ECOReport, error) {
	cfg = cfg.withDefaults()
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	rep := &ECOReport{SchemaVersion: v1.SchemaVersion, Seed: cfg.Seed, Workers: cfg.Workers}
	for _, workload := range []string{"decoder", "wide"} {
		for _, v := range ecoVariants() {
			seq := runECOSequence(tech, lib, workload, v, cfg)
			rep.Sequences = append(rep.Sequences, seq)
			if !seq.Pass {
				rep.Failures++
			}
		}
	}
	rep.Pass = rep.Failures == 0
	return rep, nil
}
