package verify

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"time"

	"qwm/internal/devmodel"
	"qwm/internal/faultinject"
	"qwm/internal/mos"
	"qwm/internal/sta"
	"qwm/internal/sta/remotecache"
	"qwm/internal/stages"
)

// RemoteConfig parameterizes the remote-cache differential: the engine runs
// against a live in-process tier server under injected network weather, and
// every answer must stay bit-identical to a remote-disabled baseline — the
// fault-tolerance envelope may only ever convert failures into cache
// misses. The sweep also pins the circuit breaker's deterministic state
// trajectory and the fleet contract (a fresh replica answering warm off a
// shared tier).
type RemoteConfig struct {
	// Seed drives the network fault injectors.
	Seed int64
	// Workers is the analyzer worker count (default 4).
	Workers int
	// Bits sizes the decoder workload (default 3).
	Bits int
	// Rate is the per-class network fault rate (default 0.2).
	Rate float64
	// Progress, when set, receives one line per completed cell.
	Progress func(format string, args ...any)
}

func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Bits <= 0 {
		c.Bits = 3
	}
	if c.Rate <= 0 || c.Rate > 1 {
		c.Rate = 0.2
	}
	return c
}

// RemoteCell is one gated remote-cache experiment.
type RemoteCell struct {
	Name     string   `json:"name"`
	Problems []string `json:"problems,omitempty"`
	Pass     bool     `json:"pass"`
}

// RemoteReport aggregates the remote-cache sweep.
type RemoteReport struct {
	SchemaVersion string       `json:"schema_version"`
	Seed          int64        `json:"seed"`
	Rate          float64      `json:"rate"`
	Cells         []RemoteCell `json:"cells"`
	// RemoteHitRate is the fresh replica's remote hit rate off the warm
	// shared tier (the acceptance bar is 0.9).
	RemoteHitRate float64 `json:"remote_hit_rate"`
	Failures      int     `json:"failures"`
	Pass          bool    `json:"pass"`
}

// JSON renders the report.
func (r *RemoteReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// deadTransport is a RoundTripper standing in for a dead peer: every request
// fails instantly (as a refused connection would) and is counted, so cells
// can assert EXACTLY how much network traffic the breaker let through.
type deadTransport struct{ attempts atomic.Int64 }

func (d *deadTransport) RoundTrip(*http.Request) (*http.Response, error) {
	d.attempts.Add(1)
	return nil, errors.New("verify: dead peer")
}

// remoteQuickOpts are client options for the sweep: deterministic
// count-based breaker, no wall-clock coupling.
func remoteQuickOpts() remotecache.Options {
	return remotecache.Options{
		Timeout:           2 * time.Second,
		Retries:           -1,
		Backoff:           time.Millisecond,
		BreakerThreshold:  3,
		BreakerProbeEvery: 4,
		BreakerCooldown:   -1,
	}
}

// RunRemote executes the remote-cache sweep. The invariants, per cell:
//
//   - warm-replica: a fresh replica over a warm shared tier evaluates zero
//     stages, sees a >=90 % remote hit rate, and answers bit-identically.
//   - net-latency / net-error / net-corrupt at cfg.Rate: results stay
//     bit-identical to the remote-disabled baseline, and the injector must
//     actually fire (a sweep that never injected proves nothing).
//   - breaker: against a dead peer the state trajectory is exactly
//     closed -> open after `threshold` failures, then one probe per
//     `probeEvery` suppressed operations — replayed twice to pin
//     determinism — and an engine run over the dead tier spends at most
//     threshold + 1 probe per breaker window of network attempts.
func RunRemote(cfg RemoteConfig) (*RemoteReport, error) {
	cfg = cfg.withDefaults()
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	nl, ins, outs, err := stages.DecoderNetlist(tech, cfg.Bits, 1e-6, 10e-15)
	if err != nil {
		return nil, fmt.Errorf("verify: decoder workload: %w", err)
	}
	primary := make(map[string]sta.Arrival, len(ins))
	for _, in := range ins {
		primary[in] = sta.Arrival{}
	}
	req := sta.Request{Netlist: nl, Primary: primary, Outputs: outs}

	// The shared tier every cell talks to: an in-process server over
	// per-signature memory stores.
	tierSrv := remotecache.NewServer(remotecache.MemoryStores(0), nil)
	hs := httptest.NewServer(tierSrv.Handler())
	defer hs.Close()

	// Remote-disabled baseline. Every cell must reproduce these bits.
	ref, err := sta.New(tech, lib, sta.Config{Workers: cfg.Workers}).AnalyzeContext(nil, req)
	if err != nil {
		return nil, fmt.Errorf("verify: baseline analyze: %w", err)
	}

	rep := &RemoteReport{SchemaVersion: "qwm-verify-remote/1", Seed: cfg.Seed, Rate: cfg.Rate}
	addCell := func(name string, problems []string) {
		rep.Cells = append(rep.Cells, RemoteCell{Name: name, Problems: problems, Pass: len(problems) == 0})
		if len(problems) == 0 {
			progress("cell %-16s PASS", name)
		} else {
			rep.Failures++
			progress("cell %-16s FAIL: %v", name, problems)
		}
	}
	sameBits := func(label string, got *sta.Result, problems []string) []string {
		if !reflect.DeepEqual(ref.Arrivals, got.Arrivals) {
			problems = append(problems, label+": arrivals diverged from the remote-disabled baseline")
		}
		if !reflect.DeepEqual(ref.Diagnostics, got.Diagnostics) {
			problems = append(problems, label+": diagnostics diverged from the remote-disabled baseline")
		}
		return problems
	}

	// ---- Cell: warm-replica ------------------------------------------------
	// Replica A runs cold through the remote tier, publishing every computed
	// entry; a brand-new replica B then answers entirely off the shared tier.
	{
		var problems []string
		cfgA := sta.Config{Workers: cfg.Workers}
		ca := remotecache.New(hs.URL, cfgA.Signature(), remoteQuickOpts())
		cfgA.Tier = ca
		resA, err := sta.New(tech, lib, cfgA).AnalyzeContext(nil, req)
		if err != nil {
			problems = append(problems, "replica A: "+err.Error())
		} else {
			problems = sameBits("replica A", resA, problems)
		}
		ca.Flush()
		if s := ca.Stats(); resA != nil && s.Puts < int64(resA.StagesEvaluated) {
			problems = append(problems, fmt.Sprintf("replica A published %d of %d entries", s.Puts, resA.StagesEvaluated))
		}
		ca.Close()

		cfgB := sta.Config{Workers: cfg.Workers}
		cb := remotecache.New(hs.URL, cfgB.Signature(), remoteQuickOpts())
		cfgB.Tier = cb
		resB, err := sta.New(tech, lib, cfgB).AnalyzeContext(nil, req)
		if err != nil {
			problems = append(problems, "replica B: "+err.Error())
		} else {
			if resB.StagesEvaluated != 0 {
				problems = append(problems, fmt.Sprintf("fresh replica evaluated %d stages off a warm shared tier, want 0", resB.StagesEvaluated))
			}
			problems = sameBits("replica B", resB, problems)
		}
		rep.RemoteHitRate = cb.Stats().HitRate()
		if rep.RemoteHitRate < 0.9 {
			problems = append(problems, fmt.Sprintf("remote hit rate %.3f < 0.90 (%+v)", rep.RemoteHitRate, cb.Stats()))
		}
		cb.Close()
		addCell("warm-replica", problems)
	}

	// ---- Cells: network chaos ---------------------------------------------
	// Each class fires at cfg.Rate against the (now warm) shared tier:
	// net-corrupt needs real response bodies to corrupt, which the warm tier
	// provides. Whatever the weather, the bits must not move.
	for _, class := range []faultinject.Class{faultinject.NetLatency, faultinject.NetError, faultinject.NetCorrupt} {
		var problems []string
		inj := faultinject.New(cfg.Seed).Enable(class, cfg.Rate).WithStall(200 * time.Microsecond)
		opts := remoteQuickOpts()
		opts.Fault = inj
		ccfg := sta.Config{Workers: cfg.Workers}
		cc := remotecache.New(hs.URL, ccfg.Signature(), opts)
		ccfg.Tier = cc
		res, err := sta.New(tech, lib, ccfg).AnalyzeContext(nil, req)
		if err != nil {
			problems = append(problems, "chaos analyze: "+err.Error())
		} else {
			problems = sameBits("chaos "+class.String(), res, problems)
		}
		if inj.Fired()[class.String()] == 0 {
			problems = append(problems, fmt.Sprintf("injector for %s never fired; the cell is vacuous", class))
		}
		if class == faultinject.NetCorrupt {
			if s := cc.Stats(); s.Corrupt == 0 {
				problems = append(problems, "no corrupt frames counted despite armed net-corrupt")
			} else if st := cc.BreakerState(); st != remotecache.BreakerClosed {
				problems = append(problems, fmt.Sprintf("corruption moved the breaker to %v; corrupt frames are data-plane, not peer death", st))
			}
		}
		cc.Close()
		addCell(class.String(), problems)
	}

	// ---- Cell: breaker -----------------------------------------------------
	{
		var problems []string
		trajectory := func() (states []string, attempts int64) {
			tr := &deadTransport{}
			opts := remoteQuickOpts()
			opts.HTTPClient = &http.Client{Transport: tr}
			c := remotecache.New("http://dead.invalid", "sig", opts)
			defer c.Close()
			for i := 0; i < 11; i++ {
				c.Get(fmt.Sprintf("k%d", i))
				states = append(states, c.BreakerState().String())
			}
			return states, tr.attempts.Load()
		}
		// Threshold 3, probe every 4th suppressed op: gets 1-3 fail closed
		// (the 3rd opens), 4-6 are suppressed, 7 probes and re-opens, 8-10
		// are suppressed, 11 probes and re-opens.
		want := []string{
			"closed", "closed", "open",
			"open", "open", "open", "open",
			"open", "open", "open", "open",
		}
		s1, a1 := trajectory()
		s2, a2 := trajectory()
		if !reflect.DeepEqual(s1, want) {
			problems = append(problems, fmt.Sprintf("state trajectory %v, want %v", s1, want))
		}
		if !reflect.DeepEqual(s1, s2) || a1 != a2 {
			problems = append(problems, fmt.Sprintf("breaker not deterministic: %v/%d vs %v/%d", s1, a1, s2, a2))
		}
		if a1 != 5 { // 3 to open + probe at get 7 + probe at get 11
			problems = append(problems, fmt.Sprintf("dead peer cost %d network attempts over 11 gets, want exactly 5", a1))
		}

		// Dead peer under the engine: the whole analysis may spend at most
		// threshold attempts to open the breaker plus one probe per
		// probeEvery suppressed operations — and the answer must not move.
		tr := &deadTransport{}
		opts := remoteQuickOpts()
		opts.HTTPClient = &http.Client{Transport: tr}
		dcfg := sta.Config{Workers: cfg.Workers}
		dc := remotecache.New("http://dead.invalid", dcfg.Signature(), opts)
		dcfg.Tier = dc
		res, err := sta.New(tech, lib, dcfg).AnalyzeContext(nil, req)
		if err != nil {
			problems = append(problems, "dead-peer analyze: "+err.Error())
		} else {
			problems = sameBits("dead peer", res, problems)
		}
		stats := dc.Stats()
		ops := stats.Hits + stats.Misses + stats.Puts + stats.Dropped
		budget := int64(3) + ops/4 + 1
		if got := tr.attempts.Load(); got > budget {
			problems = append(problems, fmt.Sprintf("dead peer cost %d attempts over %d ops; budget threshold+probes = %d", got, ops, budget))
		}
		if stats.FastFails == 0 {
			problems = append(problems, "open breaker never fast-failed; the cell is vacuous")
		}
		dc.Close()
		addCell("breaker", problems)
	}

	rep.Pass = rep.Failures == 0
	return rep, nil
}
