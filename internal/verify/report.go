package verify

import (
	"encoding/json"
	"math"
	"sort"

	"qwm/internal/api/v1"
	"qwm/internal/obs"
)

// Histogram is the delay-error distribution in fixed percent buckets.
type Histogram struct {
	Under1  int `json:"lt_1pct"`
	Under2  int `json:"lt_2pct"`
	Under5  int `json:"lt_5pct"`
	Under10 int `json:"lt_10pct"`
	Over10  int `json:"ge_10pct"`
}

func (h *Histogram) add(errPct float64) {
	switch {
	case errPct < 1:
		h.Under1++
	case errPct < 2:
		h.Under2++
	case errPct < 5:
		h.Under5++
	case errPct < 10:
		h.Under10++
	default:
		h.Over10++
	}
}

// Summary condenses a run: the per-case delay-error distribution of the
// QWM-vs-SPICE stage differential and the pass/fail tallies of the
// equivalence differentials.
type Summary struct {
	StageCases    int `json:"stage_cases"`
	StageErrors   int `json:"stage_engine_errors"` // engine failures, no comparison
	StageFailures int `json:"stage_tol_failures"`  // compared but over tolerance

	MedianDelayErrPct float64   `json:"median_delay_err_pct"`
	MeanDelayErrPct   float64   `json:"mean_delay_err_pct"`
	P90DelayErrPct    float64   `json:"p90_delay_err_pct"`
	P95DelayErrPct    float64   `json:"p95_delay_err_pct"`
	MaxDelayErrPct    float64   `json:"max_delay_err_pct"`
	MedianAccuracyPct float64   `json:"median_accuracy_pct"`
	MedianSlewErrPct  float64   `json:"median_slew_err_pct"`
	ErrHistogram      Histogram `json:"delay_err_histogram"`

	AnalyzeCases      int `json:"analyze_cases"`
	AnalyzeMismatches int `json:"analyze_mismatches"`
	SiblingPairs      int `json:"sibling_pairs"`
	SiblingMismatches int `json:"sibling_mismatches"`

	HotPathCases      int     `json:"hotpath_cases"`
	HotPathMismatches int     `json:"hotpath_mismatches"`
	MaxHotPathErrPct  float64 `json:"max_hotpath_err_pct"`

	// Pass requires: median accuracy >= 95 %, no equivalence mismatches,
	// and no engine errors.
	Pass bool `json:"pass"`
}

// Report is the full JSON artifact of one differential-verification run.
type Report struct {
	SchemaVersion string        `json:"schema_version"`
	Seed          int64         `json:"seed"`
	N             int           `json:"n"`
	TolPct        float64       `json:"tol_pct"`
	Stage         []StageDiff   `json:"stage_cases"`
	Analyze       []AnalyzeDiff `json:"analyze_cases"`
	Sibling       []AnalyzeDiff `json:"sibling_pairs"`
	HotPath       []HotPathDiff `json:"hotpath_cases,omitempty"`
	Summary       Summary       `json:"summary"`
	// Metrics is the aggregated STA engine metrics snapshot of the run
	// (counters + histograms), present when Config.Metrics was set.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Finalize computes the summary from the accumulated per-case records and
// stamps the wire schema version.
func (r *Report) Finalize() {
	r.SchemaVersion = v1.SchemaVersion
	s := &r.Summary
	*s = Summary{
		StageCases: len(r.Stage), AnalyzeCases: len(r.Analyze),
		SiblingPairs: len(r.Sibling), HotPathCases: len(r.HotPath),
	}

	var delayErrs, slewErrs, accs []float64
	for _, d := range r.Stage {
		if d.Err != "" {
			s.StageErrors++
			continue
		}
		delayErrs = append(delayErrs, d.DelayErrPct)
		accs = append(accs, d.AccuracyPct)
		if d.SlewErrPct > 0 {
			slewErrs = append(slewErrs, d.SlewErrPct)
		}
		s.ErrHistogram.add(d.DelayErrPct)
		if !d.Pass {
			s.StageFailures++
		}
	}
	sort.Float64s(delayErrs)
	sort.Float64s(slewErrs)
	sort.Float64s(accs)
	if len(delayErrs) > 0 {
		s.MedianDelayErrPct = percentile(delayErrs, 50)
		sum := 0.0
		for _, e := range delayErrs {
			sum += e
		}
		s.MeanDelayErrPct = sum / float64(len(delayErrs))
		s.P90DelayErrPct = percentile(delayErrs, 90)
		s.P95DelayErrPct = percentile(delayErrs, 95)
		s.MaxDelayErrPct = delayErrs[len(delayErrs)-1]
		s.MedianAccuracyPct = percentile(accs, 50)
	}
	if len(slewErrs) > 0 {
		s.MedianSlewErrPct = percentile(slewErrs, 50)
	}
	for _, d := range r.Analyze {
		if !d.Pass {
			s.AnalyzeMismatches++
		}
	}
	for _, d := range r.Sibling {
		if !d.Pass {
			s.SiblingMismatches++
		}
	}
	for _, d := range r.HotPath {
		if !d.Pass {
			s.HotPathMismatches++
		}
		if d.MaxErrPct > s.MaxHotPathErrPct {
			s.MaxHotPathErrPct = d.MaxErrPct
		}
	}
	s.Pass = s.MedianAccuracyPct >= 95 &&
		s.AnalyzeMismatches == 0 && s.SiblingMismatches == 0 &&
		s.HotPathMismatches == 0 && s.StageErrors == 0
}

// JSON renders the report with indentation.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
