package verify

import "testing"

// TestRunService runs the full service-path sweep at a small decoder size.
// Every cell must pass: wire bit-transparency, warm-disk restart with a
// >=90 % hit rate, the chaos contract through the front door, and the
// tracing determinism contract.
func TestRunService(t *testing.T) {
	rep, err := RunService(ServiceConfig{Seed: 5, Workers: 2, Bits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if !c.Pass {
			t.Errorf("cell %s failed: %v", c.Name, c.Problems)
		}
	}
	if rep.DiskHitRate < 0.9 {
		t.Errorf("disk hit rate %.3f, want >= 0.9", rep.DiskHitRate)
	}
	if !rep.Pass {
		t.Error("report did not pass")
	}
}
