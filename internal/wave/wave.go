// Package wave provides the waveform types shared by every engine in this
// repository: piecewise-linear waveforms (SPICE outputs and sources),
// piecewise-quadratic waveforms (QWM outputs), and the timing metrics —
// threshold crossings, 50 % propagation delay, 10–90 % slew, RMS deviation —
// that the paper's tables are built from.
package wave

import (
	"fmt"
	"math"
	"sort"
)

// Waveform is a voltage as a function of time. Implementations extrapolate
// by holding their first/last value outside the defined span.
type Waveform interface {
	Eval(t float64) float64
	// Span returns the time interval over which the waveform is defined.
	Span() (t0, t1 float64)
}

// Step is an ideal step source: V = Low for t < At, High for t ≥ At.
type Step struct {
	At        float64
	Low, High float64
}

// Eval implements Waveform.
func (s Step) Eval(t float64) float64 {
	if t < s.At {
		return s.Low
	}
	return s.High
}

// Span implements Waveform.
func (s Step) Span() (float64, float64) { return s.At, s.At }

// Crossing implements Crosser: a step crosses any level strictly between its
// rails exactly at its switching instant.
func (s Step) Crossing(level float64, rising bool) (float64, bool) {
	if rising && s.Low < level && s.High >= level {
		return s.At, true
	}
	if !rising && s.Low > level && s.High <= level {
		return s.At, true
	}
	return 0, false
}

// Ramp is a saturated linear ramp from Low (before T0) to High (after T1).
type Ramp struct {
	T0, T1    float64
	Low, High float64
}

// Eval implements Waveform.
func (r Ramp) Eval(t float64) float64 {
	switch {
	case t <= r.T0:
		return r.Low
	case t >= r.T1:
		return r.High
	}
	return r.Low + (r.High-r.Low)*(t-r.T0)/(r.T1-r.T0)
}

// Span implements Waveform.
func (r Ramp) Span() (float64, float64) { return r.T0, r.T1 }

// Crossing implements Crosser by inverting the ramp.
func (r Ramp) Crossing(level float64, rising bool) (float64, bool) {
	up := r.High > r.Low
	if rising != up {
		return 0, false
	}
	frac := (level - r.Low) / (r.High - r.Low)
	if frac < 0 || frac > 1 {
		return 0, false
	}
	return r.T0 + frac*(r.T1-r.T0), true
}

// DC is a constant waveform.
type DC float64

// Eval implements Waveform.
func (d DC) Eval(float64) float64 { return float64(d) }

// Span implements Waveform.
func (d DC) Span() (float64, float64) { return 0, 0 }

// PWL is a piecewise-linear waveform through sample points with strictly
// increasing times.
type PWL struct {
	T []float64
	V []float64
}

// NewPWL builds a PWL after validating monotone time and equal lengths.
func NewPWL(t, v []float64) (*PWL, error) {
	if len(t) != len(v) {
		return nil, fmt.Errorf("wave: PWL length mismatch (%d times, %d values)", len(t), len(v))
	}
	if len(t) == 0 {
		return nil, fmt.Errorf("wave: empty PWL")
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return nil, fmt.Errorf("wave: PWL times not strictly increasing at index %d", i)
		}
	}
	return &PWL{T: t, V: v}, nil
}

// Append adds a sample, which must be later than the current last one.
func (p *PWL) Append(t, v float64) {
	if n := len(p.T); n > 0 && t <= p.T[n-1] {
		panic("wave: PWL append out of order")
	}
	p.T = append(p.T, t)
	p.V = append(p.V, v)
}

// Eval implements Waveform with linear interpolation and flat extrapolation.
func (p *PWL) Eval(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	if t >= p.T[n-1] {
		return p.V[n-1]
	}
	i := sort.SearchFloat64s(p.T, t)
	// p.T[i-1] < t <= p.T[i]
	t0, t1 := p.T[i-1], p.T[i]
	v0, v1 := p.V[i-1], p.V[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Span implements Waveform.
func (p *PWL) Span() (float64, float64) {
	if len(p.T) == 0 {
		return 0, 0
	}
	return p.T[0], p.T[len(p.T)-1]
}

// Crossing returns the earliest time at which the waveform crosses level in
// the given direction (rising: from below to at-or-above). ok is false when
// no crossing exists.
func (p *PWL) Crossing(level float64, rising bool) (t float64, ok bool) {
	for i := 1; i < len(p.T); i++ {
		v0, v1 := p.V[i-1], p.V[i]
		var hit bool
		if rising {
			hit = v0 < level && v1 >= level
		} else {
			hit = v0 > level && v1 <= level
		}
		if !hit {
			continue
		}
		if v1 == v0 {
			return p.T[i], true
		}
		frac := (level - v0) / (v1 - v0)
		return p.T[i-1] + frac*(p.T[i]-p.T[i-1]), true
	}
	return 0, false
}

// Sample evaluates any waveform on a uniform grid, producing a PWL.
func Sample(w Waveform, t0, t1 float64, n int) *PWL {
	if n < 2 {
		n = 2
	}
	p := &PWL{T: make([]float64, 0, n), V: make([]float64, 0, n)}
	dt := (t1 - t0) / float64(n-1)
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		p.Append(t, w.Eval(t))
	}
	return p
}

// RMSDiff returns the root-mean-square difference between two waveforms
// sampled at n uniform points over [t0, t1].
func RMSDiff(a, b Waveform, t0, t1 float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	dt := (t1 - t0) / float64(n-1)
	s := 0.0
	for i := 0; i < n; i++ {
		t := t0 + float64(i)*dt
		d := a.Eval(t) - b.Eval(t)
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}
