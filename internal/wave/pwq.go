package wave

import (
	"fmt"
	"math"
)

// QuadSeg is one region of a piecewise-quadratic waveform:
//
//	V(t) = V0 + S·(t−T0) + 0.5·A·(t−T0)²   for T0 ≤ t < T1.
//
// In QWM terms S = I/C (the region-start current over the node capacitance)
// and A = α/C (the matched current slope over the capacitance).
type QuadSeg struct {
	T0, T1 float64
	V0     float64
	S      float64 // dV/dt at T0
	A      float64 // d²V/dt²
}

// EndValue returns the segment voltage at T1.
func (q QuadSeg) EndValue() float64 {
	dt := q.T1 - q.T0
	return q.V0 + q.S*dt + 0.5*q.A*dt*dt
}

// EndSlope returns dV/dt at T1.
func (q QuadSeg) EndSlope() float64 {
	return q.S + q.A*(q.T1-q.T0)
}

// PWQ is a piecewise-quadratic waveform — QWM's native output format, with
// one segment per critical-point region.
type PWQ struct {
	Segs []QuadSeg
}

// Append adds a segment; its start must coincide with the previous end.
func (p *PWQ) Append(s QuadSeg) error {
	if s.T1 <= s.T0 {
		return fmt.Errorf("wave: PWQ segment with non-positive duration [%g, %g]", s.T0, s.T1)
	}
	if n := len(p.Segs); n > 0 {
		prev := p.Segs[n-1]
		if math.Abs(prev.T1-s.T0) > 1e-18+1e-9*math.Abs(prev.T1) {
			return fmt.Errorf("wave: PWQ segment start %g does not meet previous end %g", s.T0, prev.T1)
		}
	}
	p.Segs = append(p.Segs, s)
	return nil
}

// Eval implements Waveform with flat extrapolation outside the span.
func (p *PWQ) Eval(t float64) float64 {
	n := len(p.Segs)
	if n == 0 {
		return 0
	}
	if t <= p.Segs[0].T0 {
		return p.Segs[0].V0
	}
	last := p.Segs[n-1]
	if t >= last.T1 {
		return last.EndValue()
	}
	for _, s := range p.Segs {
		if t < s.T1 {
			dt := t - s.T0
			return s.V0 + s.S*dt + 0.5*s.A*dt*dt
		}
	}
	return last.EndValue()
}

// Span implements Waveform.
func (p *PWQ) Span() (float64, float64) {
	if len(p.Segs) == 0 {
		return 0, 0
	}
	return p.Segs[0].T0, p.Segs[len(p.Segs)-1].T1
}

// Crossing returns the earliest time the waveform reaches level in the given
// direction, solving each segment's quadratic analytically.
func (p *PWQ) Crossing(level float64, rising bool) (float64, bool) {
	for _, s := range p.Segs {
		dur := s.T1 - s.T0
		// Roots of 0.5·A·x² + S·x + (V0 − level) = 0 within [0, dur].
		roots := quadRoots(0.5*s.A, s.S, s.V0-level)
		best := math.Inf(1)
		for _, x := range roots {
			if x < -1e-18 || x > dur*(1+1e-9) {
				continue
			}
			if x < 0 {
				x = 0
			}
			// Direction check via slope at the root.
			slope := s.S + s.A*x
			if (rising && slope >= 0) || (!rising && slope <= 0) {
				if x < best {
					best = x
				}
			}
		}
		if !math.IsInf(best, 1) {
			return s.T0 + best, true
		}
	}
	return 0, false
}

// quadRoots returns the real roots of a·x² + b·x + c, degenerating to the
// linear case when a ≈ 0 relative to b.
func quadRoots(a, b, c float64) []float64 {
	if math.Abs(a) < 1e-300 || math.Abs(a) < 1e-14*math.Abs(b) {
		if b == 0 {
			return nil
		}
		return []float64{-c / b}
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return nil
	}
	sq := math.Sqrt(disc)
	// Numerically stable form avoiding cancellation.
	q := -0.5 * (b + math.Copysign(sq, b))
	r1 := q / a
	var roots []float64
	roots = append(roots, r1)
	if q != 0 {
		roots = append(roots, c/q)
	} else {
		roots = append(roots, 0)
	}
	if roots[0] > roots[1] {
		roots[0], roots[1] = roots[1], roots[0]
	}
	return roots
}

// CriticalPoints returns the (time, voltage) pairs at segment boundaries —
// the points the paper plots as "straight solid lines connecting the
// critical points" in Fig. 9.
func (p *PWQ) CriticalPoints() (ts, vs []float64) {
	if len(p.Segs) == 0 {
		return nil, nil
	}
	ts = append(ts, p.Segs[0].T0)
	vs = append(vs, p.Segs[0].V0)
	for _, s := range p.Segs {
		ts = append(ts, s.T1)
		vs = append(vs, s.EndValue())
	}
	return ts, vs
}
