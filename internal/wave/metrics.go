package wave

import (
	"fmt"
	"math"
)

// Crosser is a waveform that can locate its own threshold crossings
// analytically; PWL and PWQ both implement it.
type Crosser interface {
	Waveform
	Crossing(level float64, rising bool) (float64, bool)
}

// Delay50 returns the 50 % propagation delay of an output transition
// relative to an input switching instant tIn: the time from tIn to the
// output's crossing of vdd/2 in the given direction.
func Delay50(out Crosser, tIn, vdd float64, rising bool) (float64, error) {
	tc, ok := out.Crossing(vdd/2, rising)
	if !ok {
		return 0, fmt.Errorf("wave: output never crosses 50%% of %g V", vdd)
	}
	return tc - tIn, nil
}

// Slew returns the 10 %–90 % transition time of a waveform in the given
// direction (for falling transitions, 90 % down to 10 %).
func Slew(w Crosser, vdd float64, rising bool) (float64, error) {
	lo, hi := 0.1*vdd, 0.9*vdd
	var t1, t2 float64
	var ok1, ok2 bool
	if rising {
		t1, ok1 = w.Crossing(lo, true)
		t2, ok2 = w.Crossing(hi, true)
	} else {
		t1, ok1 = w.Crossing(hi, false)
		t2, ok2 = w.Crossing(lo, false)
	}
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("wave: waveform does not complete a 10–90%% transition")
	}
	return t2 - t1, nil
}

// DelayErrorPct returns the paper's accuracy metric: the relative delay
// error |got − ref| / ref in percent.
func DelayErrorPct(got, ref float64) float64 {
	if ref == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * math.Abs(got-ref) / math.Abs(ref)
}

// AccuracyPct is 100 − DelayErrorPct, floored at zero — the form the paper
// quotes ("maintaining an average accuracy of 99%").
func AccuracyPct(got, ref float64) float64 {
	a := 100 - DelayErrorPct(got, ref)
	if a < 0 {
		return 0
	}
	return a
}
