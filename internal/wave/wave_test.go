package wave

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestStepAndRamp(t *testing.T) {
	s := Step{At: 1, Low: 0, High: 3.3}
	if s.Eval(0.5) != 0 || s.Eval(1) != 3.3 || s.Eval(2) != 3.3 {
		t.Error("step evaluation wrong")
	}
	r := Ramp{T0: 0, T1: 2, Low: 0, High: 2}
	if r.Eval(-1) != 0 || r.Eval(1) != 1 || r.Eval(3) != 2 {
		t.Error("ramp evaluation wrong")
	}
	if DC(1.5).Eval(42) != 1.5 {
		t.Error("dc evaluation wrong")
	}
}

func TestStepCrossing(t *testing.T) {
	s := Step{At: 2, Low: 0, High: 3.3}
	if tc, ok := s.Crossing(1.65, true); !ok || tc != 2 {
		t.Errorf("rising crossing = %g, %v", tc, ok)
	}
	if _, ok := s.Crossing(1.65, false); ok {
		t.Error("falling crossing on a rising step")
	}
	if _, ok := s.Crossing(5, true); ok {
		t.Error("crossing above the step range")
	}
	down := Step{At: 1, Low: 3.3, High: 0}
	if tc, ok := down.Crossing(1.0, false); !ok || tc != 1 {
		t.Errorf("falling step crossing = %g, %v", tc, ok)
	}
}

func TestRampCrossing(t *testing.T) {
	r := Ramp{T0: 0, T1: 2, Low: 0, High: 4}
	if tc, ok := r.Crossing(1, true); !ok || !feq(tc, 0.5, 1e-12) {
		t.Errorf("ramp crossing = %g, %v", tc, ok)
	}
	if _, ok := r.Crossing(1, false); ok {
		t.Error("falling crossing on a rising ramp")
	}
	if _, ok := r.Crossing(9, true); ok {
		t.Error("crossing outside the ramp range")
	}
}

func TestNewPWLValidation(t *testing.T) {
	if _, err := NewPWL([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch not caught")
	}
	if _, err := NewPWL(nil, nil); err == nil {
		t.Error("empty PWL not caught")
	}
	if _, err := NewPWL([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing times not caught")
	}
	if _, err := NewPWL([]float64{0, 1}, []float64{1, 2}); err != nil {
		t.Errorf("valid PWL rejected: %v", err)
	}
}

func TestPWLEvalInterpolation(t *testing.T) {
	p, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 2, 0})
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {1.25, 1.5}, {2, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := p.Eval(c.t); !feq(got, c.want, 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPWLCrossing(t *testing.T) {
	p, _ := NewPWL([]float64{0, 1, 2}, []float64{0, 2, 0})
	if tc, ok := p.Crossing(1, true); !ok || !feq(tc, 0.5, 1e-12) {
		t.Errorf("rising crossing = %g, %v", tc, ok)
	}
	if tc, ok := p.Crossing(1, false); !ok || !feq(tc, 1.5, 1e-12) {
		t.Errorf("falling crossing = %g, %v", tc, ok)
	}
	if _, ok := p.Crossing(5, true); ok {
		t.Error("crossing above range should not exist")
	}
}

func TestPWLAppendOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order append should panic")
		}
	}()
	p := &PWL{}
	p.Append(1, 0)
	p.Append(0.5, 0)
}

func TestSampleAndRMSDiff(t *testing.T) {
	r := Ramp{T0: 0, T1: 1, Low: 0, High: 1}
	p := Sample(r, 0, 1, 101)
	if len(p.T) != 101 {
		t.Fatalf("sample count %d", len(p.T))
	}
	if d := RMSDiff(r, p, 0, 1, 57); d > 1e-12 {
		t.Errorf("PWL resample of a ramp should be exact, rms = %g", d)
	}
	if d := RMSDiff(DC(0), DC(2), 0, 1, 10); !feq(d, 2, 1e-12) {
		t.Errorf("rms of constant offset = %g, want 2", d)
	}
}

// Property: PWL.Eval at its own sample points returns the sample values.
func TestPWLEvalAtKnotsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		ts := make([]float64, n)
		vs := make([]float64, n)
		acc := 0.0
		for i := range ts {
			acc += 0.01 + r.Float64()
			ts[i] = acc
			vs[i] = r.NormFloat64()
		}
		p, err := NewPWL(ts, vs)
		if err != nil {
			return false
		}
		for i := range ts {
			if !feq(p.Eval(ts[i]), vs[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a crossing reported by PWL.Crossing actually evaluates to the
// level (within interpolation tolerance).
func TestPWLCrossingConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		ts := make([]float64, n)
		vs := make([]float64, n)
		acc := 0.0
		for i := range ts {
			acc += 0.1 + r.Float64()
			ts[i] = acc
			vs[i] = 3.3 * r.Float64()
		}
		p, err := NewPWL(ts, vs)
		if err != nil {
			return false
		}
		level := 3.3 * r.Float64()
		for _, rising := range []bool{true, false} {
			if tc, ok := p.Crossing(level, rising); ok {
				if !feq(p.Eval(tc), level, 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
