package wave

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuadSegEnds(t *testing.T) {
	s := QuadSeg{T0: 0, T1: 2, V0: 1, S: 3, A: -1}
	// V(2) = 1 + 3·2 − 0.5·1·4 = 5
	if !feq(s.EndValue(), 5, 1e-12) {
		t.Errorf("EndValue = %g, want 5", s.EndValue())
	}
	// V'(2) = 3 − 2 = 1
	if !feq(s.EndSlope(), 1, 1e-12) {
		t.Errorf("EndSlope = %g, want 1", s.EndSlope())
	}
}

func TestPWQAppendValidation(t *testing.T) {
	p := &PWQ{}
	if err := p.Append(QuadSeg{T0: 1, T1: 1}); err == nil {
		t.Error("zero-duration segment accepted")
	}
	if err := p.Append(QuadSeg{T0: 0, T1: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(QuadSeg{T0: 2, T1: 3}); err == nil {
		t.Error("gap between segments accepted")
	}
	if err := p.Append(QuadSeg{T0: 1, T1: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestPWQEval(t *testing.T) {
	p := &PWQ{}
	// Falling parabola then linear tail, continuous at the joint.
	if err := p.Append(QuadSeg{T0: 0, T1: 1, V0: 3.3, S: 0, A: -2}); err != nil {
		t.Fatal(err)
	}
	// end value 2.3, end slope -2
	if err := p.Append(QuadSeg{T0: 1, T1: 2, V0: 2.3, S: -2, A: 0}); err != nil {
		t.Fatal(err)
	}
	if !feq(p.Eval(-1), 3.3, 1e-12) || !feq(p.Eval(0.5), 3.3-0.25, 1e-12) ||
		!feq(p.Eval(1.5), 2.3-1, 1e-12) || !feq(p.Eval(5), 0.3, 1e-12) {
		t.Errorf("Eval wrong: %g %g %g %g", p.Eval(-1), p.Eval(0.5), p.Eval(1.5), p.Eval(5))
	}
	t0, t1 := p.Span()
	if t0 != 0 || t1 != 2 {
		t.Errorf("span = %g, %g", t0, t1)
	}
}

func TestPWQCrossingFalling(t *testing.T) {
	p := &PWQ{}
	// V(t) = 3.3 − t² on [0, 2]: crosses 2.3 at t = 1.
	if err := p.Append(QuadSeg{T0: 0, T1: 2, V0: 3.3, S: 0, A: -2}); err != nil {
		t.Fatal(err)
	}
	tc, ok := p.Crossing(2.3, false)
	if !ok || !feq(tc, 1, 1e-9) {
		t.Errorf("crossing = %g, %v; want 1", tc, ok)
	}
	if _, ok := p.Crossing(2.3, true); ok {
		t.Error("rising crossing should not exist on a falling waveform")
	}
}

func TestPWQCrossingLinearSegment(t *testing.T) {
	p := &PWQ{}
	if err := p.Append(QuadSeg{T0: 0, T1: 4, V0: 0, S: 0.5, A: 0}); err != nil {
		t.Fatal(err)
	}
	tc, ok := p.Crossing(1, true)
	if !ok || !feq(tc, 2, 1e-12) {
		t.Errorf("linear crossing = %g, %v", tc, ok)
	}
}

func TestQuadRootsStable(t *testing.T) {
	// Catastrophic-cancellation case: x² − 1e8·x + 1 has roots ~1e8 and ~1e-8.
	rs := quadRoots(1, -1e8, 1)
	if len(rs) != 2 {
		t.Fatalf("want 2 roots, got %v", rs)
	}
	if !feq(rs[0], 1e-8, 1e-9) || !feq(rs[1], 1e8, 1e-9) {
		t.Errorf("roots = %v", rs)
	}
	if rs := quadRoots(0, 2, -4); len(rs) != 1 || rs[0] != 2 {
		t.Errorf("linear fallback roots = %v", rs)
	}
	if rs := quadRoots(1, 0, 1); rs != nil {
		t.Errorf("complex case should give no roots, got %v", rs)
	}
}

func TestPWQCriticalPoints(t *testing.T) {
	p := &PWQ{}
	_ = p.Append(QuadSeg{T0: 0, T1: 1, V0: 3, S: -1, A: 0})
	_ = p.Append(QuadSeg{T0: 1, T1: 3, V0: 2, S: -1, A: 0.5})
	ts, vs := p.CriticalPoints()
	if len(ts) != 3 || len(vs) != 3 {
		t.Fatalf("got %d points", len(ts))
	}
	if ts[0] != 0 || ts[1] != 1 || ts[2] != 3 {
		t.Errorf("times = %v", ts)
	}
	if !feq(vs[1], 2, 1e-12) || !feq(vs[2], 1, 1e-12) {
		t.Errorf("values = %v", vs)
	}
}

// Property: PWQ crossings evaluate back to the level.
func TestPWQCrossingConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := &PWQ{}
		tcur, v := 0.0, 3.3
		slope := 0.0
		for i := 0; i < 4; i++ {
			dur := 0.2 + r.Float64()
			a := -2 + 4*r.Float64()
			seg := QuadSeg{T0: tcur, T1: tcur + dur, V0: v, S: slope, A: a}
			if err := p.Append(seg); err != nil {
				return false
			}
			v = seg.EndValue()
			slope = seg.EndSlope()
			tcur += dur
		}
		level := -1 + 5*r.Float64()
		for _, rising := range []bool{true, false} {
			if tc, ok := p.Crossing(level, rising); ok {
				if !feq(p.Eval(tc), level, 1e-7) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMetrics(t *testing.T) {
	// Linear fall from 3.3 to 0 over [0, 1]: 50% at t ≈ 0.5, slew 10–90% = 0.8.
	p, _ := NewPWL([]float64{0, 1}, []float64{3.3, 0})
	d, err := Delay50(p, 0, 3.3, false)
	if err != nil || !feq(d, 0.5, 1e-12) {
		t.Errorf("Delay50 = %g, %v", d, err)
	}
	s, err := Slew(p, 3.3, false)
	if err != nil || !feq(s, 0.8, 1e-12) {
		t.Errorf("Slew = %g, %v", s, err)
	}
	if _, err := Delay50(p, 0, 3.3, true); err == nil {
		t.Error("rising delay on falling edge should error")
	}
}

func TestDelayErrorAndAccuracy(t *testing.T) {
	if e := DelayErrorPct(101, 100); !feq(e, 1, 1e-12) {
		t.Errorf("error = %g", e)
	}
	if a := AccuracyPct(101, 100); !feq(a, 99, 1e-12) {
		t.Errorf("accuracy = %g", a)
	}
	if e := DelayErrorPct(1, 0); !math.IsInf(e, 1) {
		t.Errorf("error with zero ref = %g", e)
	}
	if a := AccuracyPct(300, 100); a != 0 {
		t.Errorf("accuracy floor = %g", a)
	}
}
