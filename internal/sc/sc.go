// Package sc implements the TETA-class baseline from the paper's related
// work (§II): time-domain integration of the charge/discharge chain with an
// accurate tabular device model, but with Newton–Raphson replaced by
// successive-chord (SC) iteration — the linearized conductance matrix is
// held constant across iterations (and across steps, until divergence), so
// each iteration costs only a residual evaluation and one O(K) tridiagonal
// solve. Theoretically slower convergence per step, much cheaper per
// iteration (Ortega & Rheinboldt; Dartu & Pileggi's TETA).
//
// It consumes the same Chain the QWM engine does, which makes it both an
// independent reference for QWM's accuracy and the subject of the
// integration-vs-waveform-matching benchmark.
package sc

import (
	"fmt"
	"math"

	"qwm/internal/la"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/wave"
)

// Options configures the SC transient.
type Options struct {
	Step  float64
	TStop float64
	// MaxIter bounds SC iterations per time step (default 150; successive
	// chords converges linearly, so it trades many cheap iterations for
	// Newton's few expensive ones).
	MaxIter int
}

// Result holds the integration outcome (unfolded voltages).
type Result struct {
	T      []float64
	Nodes  []*wave.PWL
	Output *wave.PWL
	// Work counters.
	Steps, Iterations, Rebuilds int
	NonConverged                int
}

// Evaluate integrates the chain ODE with backward Euler + SC iteration.
func Evaluate(ch *qwm.Chain, o Options) (*Result, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	if o.Step <= 0 || o.TStop <= 0 {
		return nil, fmt.Errorf("sc: Step and TStop must be positive")
	}
	maxIter := o.MaxIter
	if maxIter == 0 {
		maxIter = 150
	}
	m := ch.M()
	v := append([]float64(nil), ch.V0...) // folded node voltages 1..m (index 0 = node 1)
	capn := make([]float64, m)
	h := o.Step
	steps := int(math.Round(o.TStop / o.Step))
	if steps < 1 {
		steps = 1
	}

	res := &Result{}
	folded := make([][]float64, m)
	times := make([]float64, 0, steps+1)
	record := func(t float64) {
		times = append(times, t)
		for k := 0; k < m; k++ {
			folded[k] = append(folded[k], v[k])
		}
	}
	record(0)

	// elemJ: current through element i (downward) and its dJ/dVlow, dJ/dVup.
	elemJ := func(i int, t float64, vLow, vUp float64) (j, dLow, dUp float64) {
		el := ch.Elems[i]
		if el.IsWire() {
			g := 1 / el.R
			return (vUp - vLow) * g, -g, g
		}
		g := el.Gate.Eval(t)
		jj, _, dvd, dvs := el.Model.IV(el.W, g, vUp, vLow)
		return jj, dvs, dvd
	}
	nodeV := func(vv []float64, k int) float64 { // node index 0..m (0 = rail)
		if k == 0 {
			return 0
		}
		return vv[k-1]
	}

	// residual fills F at candidate voltages x for the step ending at t.
	vPrev := make([]float64, m)
	residual := func(x []float64, t float64, F []float64) {
		for k := 1; k <= m; k++ {
			jBelow, _, _ := elemJ(k-1, t, nodeV(x, k-1), nodeV(x, k))
			var jAbove float64
			if k < m {
				jAbove, _, _ = elemJ(k, t, nodeV(x, k), nodeV(x, k+1))
			}
			F[k-1] = capn[k-1]*(x[k-1]-vPrev[k-1])/h - (jAbove - jBelow)
		}
	}
	// chordG returns the conservative chord conductance of element i: the
	// maximum channel conductance over the swing (full gate drive, triode
	// origin). Chord conductances that upper-bound the true Jacobian make
	// the successive-chord iteration a contraction for monotone devices
	// (Ortega & Rheinboldt), so the matrix never needs rebuilding.
	chordG := func(i int) float64 {
		el := ch.Elems[i]
		if el.IsWire() {
			return 1 / el.R
		}
		_, _, dvd, _ := el.Model.IV(el.W, ch.VDD, 0.005, 0)
		if dvd <= 0 {
			dvd = 1e-6
		}
		// The source-side derivative gm + gds + gmb exceeds the triode-origin
		// gds; a 2.5× margin keeps the chord an upper bound everywhere, the
		// contraction condition for a never-rebuilt matrix.
		return 2.5 * dvd
	}
	// chord builds the fixed tridiagonal iteration matrix (a grounded-cap
	// resistor-network stamp with the chord conductances).
	chord := func() *la.Tridiag {
		tri := la.NewTridiag(m)
		for k := 1; k <= m; k++ {
			gBelow := chordG(k - 1)
			var gAbove float64
			if k < m {
				gAbove = chordG(k)
			}
			tri.Diag[k-1] = capn[k-1]/h + gBelow + gAbove
			if k >= 2 {
				tri.Sub[k-2] = -gBelow
			}
			if k < m {
				tri.Sup[k-1] = -gAbove
			}
		}
		res.Rebuilds++
		return tri
	}

	for k := 0; k < m; k++ {
		capn[k] = ch.Caps[k].At(v[k], ch.VDD, ch.Pol)
	}
	tri := chord()
	F := make([]float64, m)
	x := make([]float64, m)

	for s := 1; s <= steps; s++ {
		t := float64(s) * h
		copy(vPrev, v)
		capsStale := false
		for k := 0; k < m; k++ {
			c := ch.Caps[k].At(v[k], ch.VDD, ch.Pol)
			if math.Abs(c-capn[k]) > 0.05*capn[k] {
				capsStale = true
			}
			capn[k] = c
		}
		if capsStale {
			// Junction capacitances moved enough to shift the C/h diagonal;
			// rebuild the (still conservative) chord.
			tri = chord()
		}
		copy(x, v)
		converged := false
		for iter := 1; iter <= maxIter; iter++ {
			res.Iterations++
			residual(x, t, F)
			// Converged when the KCL residual is tiny in absolute amps (the
			// same criterion the Newton baseline uses) or when the chord
			// update has shrunk below a nanovolt.
			if la.VecNormInf(F) < 1e-9 {
				converged = true
				break
			}
			dx, err := tri.Solve(F)
			if err != nil || hasNaN(dx) {
				break
			}
			for k := 0; k < m; k++ {
				x[k] -= dx[k]
			}
			if la.VecNormInf(dx) < 1e-9 {
				converged = true
				break
			}
		}
		if !converged {
			res.NonConverged++
		}
		copy(v, x)
		res.Steps++
		record(t)
	}

	res.T = times
	res.Nodes = make([]*wave.PWL, m)
	for k := 0; k < m; k++ {
		vals := folded[k]
		if ch.Pol == mos.PMOS {
			un := make([]float64, len(vals))
			for i, fv := range vals {
				un[i] = ch.VDD - fv
			}
			vals = un
		}
		p, err := wave.NewPWL(times, vals)
		if err != nil {
			return nil, err
		}
		res.Nodes[k] = p
	}
	res.Output = res.Nodes[m-1]
	return res, nil
}

func hasNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// Delay50 measures the 50 % delay of the output relative to tIn, on the
// folded (falling) convention.
func Delay50(ch *qwm.Chain, r *Result, tIn float64) (float64, error) {
	rising := ch.Pol == mos.PMOS
	tc, ok := r.Output.Crossing(ch.VDD/2, rising)
	if !ok {
		return 0, fmt.Errorf("sc: output never crossed 50%%")
	}
	return tc - tIn, nil
}
