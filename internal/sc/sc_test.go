package sc

import (
	"math"
	"testing"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/wave"
)

var (
	tech = mos.CMOSP35()
	lib  = devmodel.NewLibrary(tech)
)

func stackChain(t testing.TB, k int, w, cl float64) *qwm.Chain {
	tbl, err := lib.Table(mos.NMOS, tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	ch := &qwm.Chain{Pol: mos.NMOS, VDD: tech.VDD}
	for i := 0; i < k; i++ {
		var g wave.Waveform = wave.DC(tech.VDD)
		if i == 0 {
			g = wave.Step{At: 0, Low: 0, High: tech.VDD}
		}
		ch.Elems = append(ch.Elems, &qwm.Elem{Model: tbl, W: w, Gate: g})
		ch.Caps = append(ch.Caps, qwm.NodeCap{Fixed: cl})
		ch.V0 = append(ch.V0, tech.VDD)
	}
	return ch
}

func TestSCValidation(t *testing.T) {
	ch := stackChain(t, 2, 1e-6, 5e-15)
	if _, err := Evaluate(ch, Options{Step: 0, TStop: 1e-9}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Evaluate(ch, Options{Step: 1e-12, TStop: 0}); err == nil {
		t.Error("zero tstop accepted")
	}
	bad := &qwm.Chain{}
	if _, err := Evaluate(bad, Options{Step: 1e-12, TStop: 1e-9}); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestSCDischargesStack(t *testing.T) {
	ch := stackChain(t, 3, 1e-6, 5e-15)
	res, err := Evaluate(ch, Options{Step: 1e-12, TStop: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.NonConverged > res.Steps/50 {
		t.Errorf("%d of %d steps did not converge", res.NonConverged, res.Steps)
	}
	if v := res.Output.Eval(1e-9); v > 0.05 {
		t.Errorf("output did not discharge: %g", v)
	}
	// Successive chords must rebuild far less often than it iterates.
	if res.Rebuilds*4 > res.Steps {
		t.Errorf("chord rebuilt too often: %d rebuilds over %d steps", res.Rebuilds, res.Steps)
	}
}

// SC is an independent integration engine over the same chain model: its
// delay must agree closely with QWM's.
func TestSCAgreesWithQWM(t *testing.T) {
	for _, k := range []int{2, 4, 6} {
		ch := stackChain(t, k, 1.5e-6, 8e-15)
		scRes, err := Evaluate(ch, Options{Step: 0.5e-12, TStop: 3e-9})
		if err != nil {
			t.Fatal(err)
		}
		dSC, err := Delay50(ch, scRes, 0)
		if err != nil {
			t.Fatal(err)
		}
		qRes, err := qwm.Evaluate(ch, qwm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		dQ, err := qRes.Delay50(0, tech.VDD)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(dQ-dSC) / dSC; e > 0.03 {
			t.Errorf("K=%d: qwm %g vs sc %g (%.1f%% apart)", k, dQ, dSC, 100*e)
		}
	}
}

func TestSCPMOSChain(t *testing.T) {
	tbl, err := lib.Table(mos.PMOS, tech.LMin)
	if err != nil {
		t.Fatal(err)
	}
	gate := wave.Step{At: 0, Low: tech.VDD, High: 0}
	ch := &qwm.Chain{
		Pol: mos.PMOS, VDD: tech.VDD,
		Elems: []*qwm.Elem{
			{Model: tbl, W: 2e-6, Gate: qwm.FoldWave{W: gate, VDD: tech.VDD}},
			{Model: tbl, W: 2e-6, Gate: qwm.FoldWave{W: wave.DC(0), VDD: tech.VDD}},
		},
		Caps: []qwm.NodeCap{{Fixed: 6e-15}, {Fixed: 6e-15}},
		V0:   []float64{tech.VDD, tech.VDD},
	}
	res, err := Evaluate(ch, Options{Step: 1e-12, TStop: 2e-9})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Output.Eval(2e-9); v < 0.9*tech.VDD {
		t.Errorf("pull-up output = %g, want near VDD", v)
	}
	if _, err := Delay50(ch, res, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSCWireChain(t *testing.T) {
	tbl, _ := lib.Table(mos.NMOS, tech.LMin)
	step := wave.Step{At: 0, Low: 0, High: tech.VDD}
	ch := &qwm.Chain{
		Pol: mos.NMOS, VDD: tech.VDD,
		Elems: []*qwm.Elem{
			{Model: tbl, W: 2e-6, Gate: step},
			{R: 1e3},
			{Model: tbl, W: 2e-6, Gate: wave.DC(tech.VDD)},
		},
		Caps: []qwm.NodeCap{{Fixed: 4e-15}, {Fixed: 4e-15}, {Fixed: 12e-15}},
		V0:   []float64{tech.VDD, tech.VDD, tech.VDD},
	}
	res, err := Evaluate(ch, Options{Step: 1e-12, TStop: 3e-9})
	if err != nil {
		t.Fatal(err)
	}
	dSC, err := Delay50(ch, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	qRes, err := qwm.Evaluate(ch, qwm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dQ, _ := qRes.Delay50(0, tech.VDD)
	if e := math.Abs(dQ-dSC) / dSC; e > 0.04 {
		t.Errorf("wire chain: qwm %g vs sc %g", dQ, dSC)
	}
}
