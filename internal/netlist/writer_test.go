package netlist

import (
	"math"
	"strings"
	"testing"

	"qwm/internal/circuit"
	"qwm/internal/wave"
)

func TestFormatValueRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -2.5, 1500, 2e6, 3e9, 15e-15, 10e-12, 3.3, 0.35e-6, 5e-3, 47e-9} {
		s := FormatValue(v)
		got, err := ParseValue(s)
		if err != nil {
			t.Fatalf("ParseValue(FormatValue(%g) = %q): %v", v, s, err)
		}
		if math.Abs(got-v) > 1e-6*math.Abs(v)+1e-30 {
			t.Errorf("round trip %g -> %q -> %g", v, s, got)
		}
	}
}

func TestFormatDeckRoundTrip(t *testing.T) {
	d, err := ParseString(nandDeck)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(d)
	d2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	n1, n2 := d.Netlist, d2.Netlist
	if len(n1.Transistors) != len(n2.Transistors) ||
		len(n1.Resistors) != len(n2.Resistors) ||
		len(n1.Capacitors) != len(n2.Capacitors) ||
		len(n1.VSources) != len(n2.VSources) {
		t.Fatalf("element counts differ:\n%s", text)
	}
	for i := range n1.Transistors {
		a, b := n1.Transistors[i], n2.Transistors[i]
		if a.Drain != b.Drain || a.Gate != b.Gate || a.Source != b.Source ||
			a.Kind != b.Kind || math.Abs(a.W-b.W) > 1e-12 || math.Abs(a.L-b.L) > 1e-12 {
			t.Errorf("transistor %d differs: %+v vs %+v", i, a, b)
		}
	}
	if d2.TranStep != d.TranStep || d2.TranStop != d.TranStop {
		t.Errorf("tran params differ")
	}
	for k, v := range d.IC {
		if math.Abs(d2.IC[k]-v) > 1e-9 {
			t.Errorf("ic[%s] differs", k)
		}
	}
	// Source waveforms behave identically.
	for i := range n1.VSources {
		w1, w2 := n1.VSources[i].Wave, n2.VSources[i].Wave
		for _, tt := range []float64{0, 0.5e-12, 1e-12, 1e-9} {
			if math.Abs(w1.Eval(tt)-w2.Eval(tt)) > 1e-6 {
				t.Errorf("source %d differs at t=%g", i, tt)
			}
		}
	}
}

func TestFormatSourceKinds(t *testing.T) {
	d := &Deck{Netlist: &circuit.Netlist{}, IC: map[string]float64{}}
	d.Netlist.AddVSource("v1", "a", "0", wave.DC(3.3))
	d.Netlist.AddVSource("v2", "b", "0", wave.Step{At: 10e-12, Low: 0, High: 3.3})
	d.Netlist.AddVSource("v3", "c", "0", wave.Ramp{T0: 0, T1: 50e-12, Low: 3.3, High: 0})
	text := Format(d)
	if !strings.Contains(text, "DC 3.3") {
		t.Errorf("DC source missing:\n%s", text)
	}
	d2, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	// The step becomes a steep PWL: value just after the edge is High.
	if got := d2.Netlist.VSources[1].Wave.Eval(11e-12); math.Abs(got-3.3) > 1e-9 {
		t.Errorf("step re-parse = %g", got)
	}
	// The ramp midpoint survives.
	if got := d2.Netlist.VSources[2].Wave.Eval(25e-12); math.Abs(got-1.65) > 1e-6 {
		t.Errorf("ramp re-parse = %g", got)
	}
}
