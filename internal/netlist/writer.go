package netlist

import (
	"fmt"
	"strings"

	"qwm/internal/circuit"
	"qwm/internal/wave"
)

// Format serializes a deck back to SPICE-card text. Sources render as DC or
// PWL cards; Step and Ramp waveforms become equivalent two-point PWLs (with
// a 1 fs rise for the ideal step). Parse(Format(d)) reproduces the circuit.
func Format(d *Deck) string {
	var b strings.Builder
	title := d.Title
	if title == "" {
		title = "* untitled"
	}
	b.WriteString(title)
	b.WriteByte('\n')
	n := d.Netlist
	for _, v := range n.VSources {
		fmt.Fprintf(&b, "%s %s %s %s\n", v.Name, v.A, v.B, formatSource(v.Wave))
	}
	for _, t := range n.Transistors {
		kind := "NMOS"
		if t.Kind == circuit.KindPMOS {
			kind = "PMOS"
		}
		fmt.Fprintf(&b, "%s %s %s %s %s %s W=%s L=%s",
			t.Name, t.Drain, t.Gate, t.Source, t.Body, kind,
			FormatValue(t.W), FormatValue(t.L))
		if t.DrainJunc.Area > 0 {
			fmt.Fprintf(&b, " AD=%s PD=%s", FormatValue(t.DrainJunc.Area), FormatValue(t.DrainJunc.Perim))
		}
		if t.SourceJunc.Area > 0 {
			fmt.Fprintf(&b, " AS=%s PS=%s", FormatValue(t.SourceJunc.Area), FormatValue(t.SourceJunc.Perim))
		}
		b.WriteByte('\n')
	}
	for _, r := range n.Resistors {
		fmt.Fprintf(&b, "%s %s %s %s\n", r.Name, r.A, r.B, FormatValue(r.R))
	}
	for _, c := range n.Capacitors {
		fmt.Fprintf(&b, "%s %s %s %s\n", c.Name, c.A, c.B, FormatValue(c.C))
	}
	if len(d.IC) > 0 {
		b.WriteString(".ic")
		// Deterministic order.
		keys := make([]string, 0, len(d.IC))
		for k := range d.IC {
			keys = append(keys, k)
		}
		sortStrings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " V(%s)=%s", k, FormatValue(d.IC[k]))
		}
		b.WriteByte('\n')
	}
	if d.TranStep > 0 && d.TranStop > 0 {
		fmt.Fprintf(&b, ".tran %s %s\n", FormatValue(d.TranStep), FormatValue(d.TranStop))
	}
	b.WriteString(".end\n")
	return b.String()
}

func formatSource(w interface{ Eval(t float64) float64 }) string {
	switch s := w.(type) {
	case nil:
		return "DC 0"
	case wave.DC:
		return "DC " + FormatValue(float64(s))
	case wave.Step:
		// An ideal step becomes a 1 fs PWL ramp at the switching instant.
		t0 := s.At
		if t0 < 0 {
			t0 = 0
		}
		return fmt.Sprintf("PWL(%s %s %s %s)",
			FormatValue(t0), FormatValue(s.Low),
			FormatValue(t0+1e-15), FormatValue(s.High))
	case wave.Ramp:
		return fmt.Sprintf("PWL(%s %s %s %s)",
			FormatValue(s.T0), FormatValue(s.Low),
			FormatValue(s.T1), FormatValue(s.High))
	case *wave.PWL:
		var b strings.Builder
		b.WriteString("PWL(")
		for i := range s.T {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s %s", FormatValue(s.T[i]), FormatValue(s.V[i]))
		}
		b.WriteByte(')')
		return b.String()
	default:
		// Sample unknown waveforms at t = 0 as a DC approximation.
		return "DC " + FormatValue(w.Eval(0))
	}
}

// FormatValue renders a number with the natural SPICE suffix.
func FormatValue(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0"
	case abs >= 1e9:
		return trimZero(v/1e9) + "g"
	case abs >= 1e6:
		return trimZero(v/1e6) + "meg"
	case abs >= 1e3:
		return trimZero(v/1e3) + "k"
	case abs >= 1:
		return trimZero(v)
	case abs >= 1e-3:
		return trimZero(v*1e3) + "m"
	case abs >= 1e-6:
		return trimZero(v*1e6) + "u"
	case abs >= 1e-9:
		return trimZero(v*1e9) + "n"
	case abs >= 1e-12:
		return trimZero(v*1e12) + "p"
	default:
		return trimZero(v*1e15) + "f"
	}
}

func trimZero(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
