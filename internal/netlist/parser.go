// Package netlist parses a minimal SPICE-style deck into a circuit.Netlist
// plus analysis directives, so the command-line tools can consume the same
// input format a circuit designer would write:
//
//   - 2-input NAND pull-down
//     Vdd vdd 0 DC 3.3
//     Vin in 0 PWL(0 0 1p 3.3)
//     M1 x1 in 0 0 NMOS W=1u L=0.35u
//     M2 out vdd x1 0 NMOS W=1u L=0.35u
//     C1 out 0 15f
//     .ic V(out)=3.3 V(x1)=3.3
//     .tran 1p 2n
//     .end
//
// Supported cards: M (MOSFET), R, C, V (DC / PWL), .tran, .ic, .end, and
// '*' comments. Units accept the usual SPICE suffixes (f p n u m k meg g).
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"qwm/internal/circuit"
	"qwm/internal/wave"
)

// Deck is a parsed netlist plus its analysis directives.
type Deck struct {
	Title   string
	Netlist *circuit.Netlist
	// TranStep and TranStop come from .tran; zero when absent.
	TranStep, TranStop float64
	// IC maps node names to initial voltages from .ic.
	IC map[string]float64
}

// Parse reads a deck from r.
func Parse(r io.Reader) (*Deck, error) {
	d := &Deck{Netlist: &circuit.Netlist{}, IC: map[string]float64{}}
	sc := bufio.NewScanner(r)
	lineNo := 0
	first := true
	var prev string
	flush := func(line string, no int) error {
		if line == "" {
			return nil
		}
		return d.card(line, no)
	}
	for sc.Scan() {
		lineNo++
		raw := strings.TrimRight(sc.Text(), " \t\r")
		trimmed := strings.TrimSpace(raw)
		if first {
			// SPICE convention: the first line is always the title.
			d.Title = trimmed
			first = false
			continue
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		// '+' continuation lines extend the previous card.
		if strings.HasPrefix(trimmed, "+") {
			prev += " " + strings.TrimSpace(trimmed[1:])
			continue
		}
		if err := flush(prev, lineNo-1); err != nil {
			return nil, err
		}
		prev = trimmed
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(prev, lineNo); err != nil {
		return nil, err
	}
	if err := d.Netlist.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseString parses a deck held in a string.
func ParseString(s string) (*Deck, error) { return Parse(strings.NewReader(s)) }

func (d *Deck) card(line string, no int) error {
	fields := splitCard(line)
	if len(fields) == 0 {
		return nil
	}
	name := fields[0]
	var err error
	switch strings.ToLower(name)[0] {
	case 'm':
		err = d.mosCard(name, fields[1:])
	case 'r':
		err = d.resCard(name, fields[1:])
	case 'c':
		err = d.capCard(name, fields[1:])
	case 'v':
		err = d.vCard(name, fields[1:])
	case '.':
		err = d.dotCard(strings.ToLower(name), fields[1:])
	default:
		err = fmt.Errorf("unsupported card %q", name)
	}
	if err != nil {
		return fmt.Errorf("netlist: line %d: %w", no, err)
	}
	return nil
}

// splitCard tokenizes a card, keeping parenthesized groups (PWL lists)
// together as single tokens with inner spaces normalized.
func splitCard(line string) []string {
	var out []string
	depth := 0
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t' || r == ',') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func (d *Deck) mosCard(name string, f []string) error {
	if len(f) < 5 {
		return fmt.Errorf("%s: MOSFET needs d g s b type", name)
	}
	kind := circuit.KindNMOS
	switch strings.ToLower(f[4]) {
	case "nmos", "n":
		kind = circuit.KindNMOS
	case "pmos", "p":
		kind = circuit.KindPMOS
	default:
		return fmt.Errorf("%s: unknown device type %q", name, f[4])
	}
	t := &circuit.Transistor{
		Name: name, Kind: kind,
		Drain: f[0], Gate: f[1], Source: f[2], Body: f[3],
	}
	for _, kv := range f[5:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("%s: expected key=value, got %q", name, kv)
		}
		x, err := ParseValue(val)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		switch strings.ToLower(key) {
		case "w":
			t.W = x
		case "l":
			t.L = x
		case "ad":
			t.DrainJunc.Area = x
		case "pd":
			t.DrainJunc.Perim = x
		case "as":
			t.SourceJunc.Area = x
		case "ps":
			t.SourceJunc.Perim = x
		default:
			return fmt.Errorf("%s: unknown parameter %q", name, key)
		}
	}
	if t.W == 0 || t.L == 0 {
		return fmt.Errorf("%s: W and L are required", name)
	}
	d.Netlist.AddTransistor(t)
	return nil
}

func (d *Deck) resCard(name string, f []string) error {
	if len(f) != 3 {
		return fmt.Errorf("%s: resistor needs two nodes and a value", name)
	}
	v, err := ParseValue(f[2])
	if err != nil {
		return err
	}
	d.Netlist.AddResistor(name, f[0], f[1], v)
	return nil
}

func (d *Deck) capCard(name string, f []string) error {
	if len(f) != 3 {
		return fmt.Errorf("%s: capacitor needs two nodes and a value", name)
	}
	v, err := ParseValue(f[2])
	if err != nil {
		return err
	}
	d.Netlist.AddCapacitor(name, f[0], f[1], v)
	return nil
}

func (d *Deck) vCard(name string, f []string) error {
	if len(f) < 3 {
		return fmt.Errorf("%s: source needs two nodes and a value", name)
	}
	spec := strings.Join(f[2:], " ")
	w, err := parseSourceSpec(spec)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	d.Netlist.AddVSource(name, f[0], f[1], w)
	return nil
}

func parseSourceSpec(spec string) (wave.Waveform, error) {
	s := strings.TrimSpace(spec)
	low := strings.ToLower(s)
	switch {
	case strings.HasPrefix(low, "dc"):
		v, err := ParseValue(strings.TrimSpace(s[2:]))
		if err != nil {
			return nil, err
		}
		return wave.DC(v), nil
	case strings.HasPrefix(low, "pwl"):
		inner := strings.TrimSpace(s[3:])
		inner = strings.TrimPrefix(inner, "(")
		inner = strings.TrimSuffix(inner, ")")
		parts := strings.Fields(inner)
		if len(parts) == 0 || len(parts)%2 != 0 {
			return nil, fmt.Errorf("PWL needs an even number of values")
		}
		var ts, vs []float64
		for i := 0; i < len(parts); i += 2 {
			t, err := ParseValue(parts[i])
			if err != nil {
				return nil, err
			}
			v, err := ParseValue(parts[i+1])
			if err != nil {
				return nil, err
			}
			ts = append(ts, t)
			vs = append(vs, v)
		}
		return wave.NewPWL(ts, vs)
	default:
		// A bare number is a DC value.
		v, err := ParseValue(s)
		if err != nil {
			return nil, fmt.Errorf("unsupported source spec %q", spec)
		}
		return wave.DC(v), nil
	}
}

func (d *Deck) dotCard(name string, f []string) error {
	switch name {
	case ".tran":
		if len(f) < 2 {
			return fmt.Errorf(".tran needs step and stop")
		}
		step, err := ParseValue(f[0])
		if err != nil {
			return err
		}
		stop, err := ParseValue(f[1])
		if err != nil {
			return err
		}
		d.TranStep, d.TranStop = step, stop
		return nil
	case ".ic":
		for _, kv := range f {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf(".ic expects V(node)=value, got %q", kv)
			}
			key = strings.ToLower(strings.TrimSpace(key))
			if !strings.HasPrefix(key, "v(") || !strings.HasSuffix(key, ")") {
				return fmt.Errorf(".ic expects V(node)=value, got %q", kv)
			}
			node := circuit.CanonName(key[2 : len(key)-1])
			v, err := ParseValue(val)
			if err != nil {
				return err
			}
			d.IC[node] = v
		}
		return nil
	case ".end":
		return nil
	case ".option", ".options", ".model":
		// Accepted and ignored: the technology is built in.
		return nil
	default:
		return fmt.Errorf("unsupported directive %q", name)
	}
}

// ParseValue parses a SPICE number with an optional scale suffix.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	scale := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		scale, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(s, "mil"):
		scale, s = 25.4e-6, s[:len(s)-3]
	default:
		if n := len(s); n > 1 {
			switch s[n-1] {
			case 'f':
				scale, s = 1e-15, s[:n-1]
			case 'p':
				scale, s = 1e-12, s[:n-1]
			case 'n':
				scale, s = 1e-9, s[:n-1]
			case 'u':
				scale, s = 1e-6, s[:n-1]
			case 'm':
				scale, s = 1e-3, s[:n-1]
			case 'k':
				scale, s = 1e3, s[:n-1]
			case 'g':
				scale, s = 1e9, s[:n-1]
			case 't':
				scale, s = 1e12, s[:n-1]
			}
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * scale, nil
}
