package netlist

import (
	"math"
	"strings"
	"testing"

	"qwm/internal/circuit"
)

const nandDeck = `* 2-input NAND pull-down
Vdd vdd 0 DC 3.3
Vin in 0 PWL(0 0 1p 3.3)
M1 x1 in 0 0 NMOS W=1u L=0.35u
M2 out vdd x1 0 NMOS W=1u L=0.35u
MP1 out in vdd vdd PMOS W=2u L=0.35u
C1 out 0 15f
R1 out mid 1.5k
.ic V(out)=3.3 V(x1)=3.3
.tran 1p 2n
.end
`

func TestParseNANDDeck(t *testing.T) {
	d, err := ParseString(nandDeck)
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "* 2-input NAND pull-down" {
		t.Errorf("title = %q", d.Title)
	}
	n := d.Netlist
	if len(n.Transistors) != 3 {
		t.Fatalf("transistors = %d", len(n.Transistors))
	}
	m1 := n.Transistors[0]
	if m1.Drain != "x1" || m1.Gate != "in" || m1.Source != "0" || m1.W != 1e-6 || m1.L != 0.35e-6 {
		t.Errorf("M1 = %+v", m1)
	}
	if n.Transistors[2].Kind != circuit.KindPMOS {
		t.Error("MP1 should be PMOS")
	}
	if len(n.Capacitors) != 1 || math.Abs(n.Capacitors[0].C-15e-15) > 1e-25 {
		t.Errorf("caps = %+v", n.Capacitors)
	}
	if len(n.Resistors) != 1 || math.Abs(n.Resistors[0].R-1.5e3) > 1e-9 {
		t.Errorf("resistors = %+v", n.Resistors)
	}
	if d.TranStep != 1e-12 || d.TranStop != 2e-9 {
		t.Errorf("tran = %g %g", d.TranStep, d.TranStop)
	}
	if d.IC["out"] != 3.3 || d.IC["x1"] != 3.3 {
		t.Errorf("ic = %v", d.IC)
	}
	// PWL source evaluates correctly.
	var vin *circuit.VSource
	for _, v := range n.VSources {
		if v.Name == "Vin" {
			vin = v
		}
	}
	if vin == nil {
		t.Fatal("Vin missing")
	}
	if got := vin.Wave.Eval(0.5e-12); math.Abs(got-1.65) > 1e-9 {
		t.Errorf("PWL midpoint = %g", got)
	}
}

func TestParseValueSuffixes(t *testing.T) {
	cases := map[string]float64{
		"1":     1,
		"1.5k":  1500,
		"2meg":  2e6,
		"15f":   15e-15,
		"10p":   10e-12,
		"3n":    3e-9,
		"0.35u": 0.35e-6,
		"5m":    5e-3,
		"2g":    2e9,
		"-4u":   -4e-6,
		"1e-12": 1e-12,
	}
	for s, want := range cases {
		got, err := ParseValue(s)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", s, err)
			continue
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want)+1e-30 {
			t.Errorf("ParseValue(%q) = %g, want %g", s, got, want)
		}
	}
	if _, err := ParseValue("abc"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseValue(""); err == nil {
		t.Error("empty accepted")
	}
}

func TestParseTitleLine(t *testing.T) {
	d, err := ParseString("my test circuit\nR1 a 0 1k\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "my test circuit" {
		t.Errorf("title = %q", d.Title)
	}
	if len(d.Netlist.Resistors) != 1 {
		t.Error("resistor lost")
	}
}

func TestParseContinuationLines(t *testing.T) {
	deck := "t\nVin in 0 PWL(0 0\n+ 1p 3.3)\n.end\n"
	d, err := ParseString(deck)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Netlist.VSources) != 1 {
		t.Fatal("source lost")
	}
	if got := d.Netlist.VSources[0].Wave.Eval(1e-12); math.Abs(got-3.3) > 1e-9 {
		t.Errorf("continued PWL end = %g", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"t\nM1 a b c\n",                         // too few MOS nodes
		"t\nM1 a b c d XMOS W=1u L=1u\n",        // bad type
		"t\nM1 a b c d NMOS\n",                  // missing W/L
		"t\nR1 a b\n",                           // missing value
		"t\nC1 a b 1f 2f\n",                     // extra value
		"t\nV1 a 0 PWL(0 0 1p)\n",               // odd PWL list
		"t\n.tran 1p\n",                         // missing stop
		"t\n.ic out=3\n",                        // bad ic syntax
		"t\n.foo\n",                             // unknown directive
		"t\nX1 a b c\n",                         // unknown card
		"t\nM1 a b a 0 NMOS W=1u L=0.35u\n",     // drain==source fails Validate
		"t\nM1 a b c 0 NMOS W=1u L=0.35u Q=1\n", // unknown param
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("deck accepted: %q", strings.Split(s, "\n")[1])
		}
	}
}

func TestParsedDeckSimulates(t *testing.T) {
	d, err := ParseString(nandDeck)
	if err != nil {
		t.Fatal(err)
	}
	stagesList := circuit.ExtractStages(d.Netlist, []string{"out"})
	if len(stagesList) == 0 {
		t.Fatal("no stages extracted from parsed deck")
	}
}
