package netlist

import (
	"strings"
	"testing"
)

// FuzzParseValue: the value parser must never panic and must round-trip
// what it accepts through FormatValue.
func FuzzParseValue(f *testing.F) {
	for _, seed := range []string{"1", "1.5k", "2meg", "15f", "-3.3", "0.35u", "1e-12", "abc", "", "k", "--5"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseValue(s)
		if err != nil {
			return
		}
		// Whatever parses must re-parse after formatting to a close value.
		v2, err := ParseValue(FormatValue(v))
		if err != nil {
			t.Fatalf("FormatValue(%g) = %q does not re-parse: %v", v, FormatValue(v), err)
		}
		diff := v - v2
		if diff < 0 {
			diff = -diff
		}
		mag := v
		if mag < 0 {
			mag = -mag
		}
		if diff > 1e-5*mag+1e-30 {
			t.Fatalf("round trip %q: %g -> %g", s, v, v2)
		}
	})
}

// FuzzParse: arbitrary decks must either parse or error — never panic — and
// whatever parses must survive a Format/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(nandDeck)
	f.Add("t\nR1 a 0 1k\n.end\n")
	f.Add("t\nV1 a 0 PWL(0 0 1p 3.3)\nM1 b a 0 0 NMOS W=1u L=1u\n")
	f.Add("\n\n+ continuation without a card\n")
	f.Add("t\n.ic V(x)=1 V(y)=2\n.tran 1p 1n\n")
	f.Fuzz(func(t *testing.T, deck string) {
		d, err := ParseString(deck)
		if err != nil {
			return
		}
		text := Format(d)
		if _, err := ParseString(text); err != nil {
			// The circuit itself parsed; its serialization must too, unless
			// a node name contains characters our writer does not quote.
			for _, name := range d.Netlist.Nodes() {
				if strings.ContainsAny(name, " \t()=*+") {
					return
				}
			}
			for _, v := range d.Netlist.VSources {
				if strings.ContainsAny(v.Name, " \t()=*+") || !strings.HasPrefix(strings.ToLower(v.Name), "v") {
					return
				}
			}
			t.Fatalf("round trip failed: %v\n--- original:\n%s\n--- formatted:\n%s", err, deck, text)
		}
	})
}
