package awe_test

import (
	"fmt"

	"qwm/internal/awe"
)

// Reduce a 1 mm wire (100 Ω, 200 fF) to its moment-matched π macro-model —
// the preprocessing step the decoder-tree experiment applies before handing
// wires to the QWM engine.
func ExamplePiForWire() {
	pi, err := awe.PiForWire(100, 200e-15)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("CNear = %.1f fF\n", pi.CNear*1e15)
	fmt.Printf("R     = %.1f Ω\n", pi.R)
	fmt.Printf("CFar  = %.1f fF\n", pi.CFar*1e15)
	// Output:
	// CNear = 33.3 fF
	// R     = 48.0 Ω
	// CFar  = 166.7 fF
}

// Elmore delay of a two-segment RC ladder by path tracing.
func ExampleRCTree_Elmore() {
	tr := awe.NewRCTree("drv")
	_ = tr.AddNode("mid", "drv", 100, 2e-12)
	_ = tr.AddNode("out", "mid", 300, 1e-12)
	d, _ := tr.Elmore("out")
	fmt.Printf("Elmore = %.0f ps\n", d*1e12)
	// Output:
	// Elmore = 600 ps
}
