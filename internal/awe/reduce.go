package awe

import "math"

// ChainSeg is one segment of a series RC ladder: a series resistance R
// followed by a grounded capacitance C at the segment's downstream node.
// A ladder [s1 … sn] is driven at an entry node by an ideal source and ends
// at the far node of sn; the caller decides whether the far node's own
// capacitance is part of the ladder (last C) or is handled separately as an
// external load.
type ChainSeg struct {
	R, C float64
}

// ChainNodeMoments returns the first two transfer-function moments m1 and m2
// of every ladder node (index 0 is the entry node, which is driven by an
// ideal source and has m1 = m2 = 0), with an extra lumped capacitance cload
// on the far node. m1 is the negated Elmore delay; m2 is the second moment
// used as the delay-error proxy by the reduction below. This is the chain
// specialization of RCTree.Moments — exported for callers that already hold
// a series run and do not want to build a tree.
func ChainNodeMoments(segs []ChainSeg, cload float64) (m1, m2 []float64) {
	n := len(segs)
	m1 = make([]float64, n+1)
	m2 = make([]float64, n+1)
	// m_k(i) = m_k(parent) − R_i · I_k(i), where I_k(i) is the downstream
	// capacitance-weighted sum of m_{k−1}: the path-tracing recursion of
	// RCTree.Moments, with subtree(i) = nodes i..n for a chain.
	capAt := func(i int) float64 { // node i ≥ 1 → segs[i−1].C (+cload at far node)
		c := segs[i-1].C
		if i == n {
			c += cload
		}
		return c
	}
	for k := 1; k <= 2; k++ {
		prev := m1
		if k == 1 {
			prev = nil // m_0 = 1 everywhere
		}
		cur := m1
		if k == 2 {
			cur = m2
		}
		// Downstream sums by a reverse sweep.
		iacc := 0.0
		down := make([]float64, n+1)
		for i := n; i >= 1; i-- {
			mkm1 := 1.0
			if prev != nil {
				mkm1 = prev[i]
			}
			iacc += capAt(i) * mkm1
			down[i] = iacc
		}
		// Moments by a forward sweep.
		for i := 1; i <= n; i++ {
			cur[i] = cur[i-1] - segs[i-1].R*down[i]
		}
	}
	return m1, m2
}

// ChainMoments returns the far node's first two transfer moments (m1, m2)
// with an extra lumped load cload there. −m1 is the exit Elmore delay.
func ChainMoments(segs []ChainSeg, cload float64) (m1, m2 float64) {
	v1, v2 := ChainNodeMoments(segs, cload)
	return v1[len(segs)], v2[len(segs)]
}

// ChainTotals returns the ladder's total series resistance and total
// grounded capacitance.
func ChainTotals(segs []ChainSeg) (rtot, ctot float64) {
	for _, s := range segs {
		rtot += s.R
		ctot += s.C
	}
	return rtot, ctot
}

// reduceGroups collapses the ladder into `groups` contiguous chunks. Each
// chunk is modeled as a resistance R_a carrying the chunk's entire
// capacitance at its far node, followed by the remaining resistance
// R_b = R_chunk − R_a; R_a is chosen so the chunk's internal Elmore
// contribution Σ_j (Σ_{i≤j} R_i)·C_j is preserved exactly, and the chunk's
// total R and total C are preserved by construction. Because each chunk
// preserves (R, C, internal Elmore), the reduced ladder's exit Elmore — and
// the Elmore at the far node under ANY external load — equals the original's
// exactly; only second and higher moments deviate.
//
// A node between R_b and the next chunk's R_a would carry no capacitance —
// electrically it is nothing — so R_b is folded forward into the next
// emitted segment's resistance instead (exact, and it keeps consumers that
// require positive node capacitances, like the QWM builder, happy). Only a
// trailing remainder is emitted as a capacitance-free segment: its far node
// is the caller's exit, whose load is external to the ladder.
func reduceGroups(segs []ChainSeg, groups int) []ChainSeg {
	out := make([]ChainSeg, 0, groups+1)
	n := len(segs)
	carry := 0.0
	for g := 0; g < groups; g++ {
		lo, hi := g*n/groups, (g+1)*n/groups // contiguous, deterministic split
		if lo == hi {
			continue
		}
		var rtot, ctot, elm, rcum float64
		for _, s := range segs[lo:hi] {
			rcum += s.R
			rtot = rcum
			ctot += s.C
			elm += rcum * s.C
		}
		if ctot == 0 {
			carry += rtot
			continue
		}
		ra := elm / ctot // ≤ rtot since every Rcum ≤ rtot
		out = append(out, ChainSeg{R: carry + ra, C: ctot})
		carry = rtot - ra
	}
	if carry > 0 {
		out = append(out, ChainSeg{R: carry})
	}
	return out
}

// ReduceChain collapses a series RC ladder into an equivalent short ladder:
// total resistance, total capacitance and the exit Elmore delay (under the
// external load cload) are preserved exactly, and the relative second-moment
// mismatch |m2' − m2| / m1² — a dimensionless delay-error proxy (for a
// single-pole response m2 = m1², so this normalization reads directly as a
// fractional waveform distortion) — is kept at or below tol by doubling the
// segment budget until it fits. The returned error estimate is the achieved
// mismatch. When no reduction satisfies tol with fewer segments than the
// input, the input is returned unchanged with error 0.
func ReduceChain(segs []ChainSeg, cload, tol float64) ([]ChainSeg, float64) {
	if len(segs) <= 2 {
		return segs, 0
	}
	m1f, m2f := ChainMoments(segs, cload)
	if m1f == 0 {
		// No capacitance anywhere: a pure resistor collapses to one segment.
		rtot, ctot := ChainTotals(segs)
		if ctot == 0 {
			return []ChainSeg{{R: rtot}}, 0
		}
		return segs, 0
	}
	for groups := 1; ; groups *= 2 {
		red := reduceGroups(segs, groups)
		if len(red) >= len(segs) {
			return segs, 0
		}
		m1r, m2r := ChainMoments(red, cload)
		// m1 matches to rounding by construction; fold any residual into the
		// estimate so the bound is honest about float error too.
		err := (math.Abs(m2r-m2f) + math.Abs(m1r-m1f)*math.Abs(m1f)) / (m1f * m1f)
		if err <= tol {
			return red, err
		}
	}
}

// PiFromChain reduces a series RC ladder to its O'Brien/Savarino π model by
// matching the first three driving-point admittance moments — the reusable
// library form of the reduction the decoder example performed inline.
func PiFromChain(segs []ChainSeg) (Pi, error) {
	m1, m2 := ChainNodeMoments(segs, 0)
	var y1, y2, y3 float64
	for i := 1; i <= len(segs); i++ {
		c := segs[i-1].C
		y1 += c         // Σ c_i · m0
		y2 += c * m1[i] // Σ c_i · m1
		y3 += c * m2[i] // Σ c_i · m2
	}
	return PiFromMoments(y1, y2, y3)
}
