// Package awe implements the linear-interconnect substrate of the paper's
// related work and its decoder-tree experiment: RC-tree moment computation
// by path tracing, the Elmore delay metric, asymptotic waveform evaluation
// (AWE — moment-matched Padé poles and residues), and the O'Brien/Savarino
// style π-model reduction the paper uses to macro-model long wires before
// handing them to QWM ("We first used AWE approach to build a macro π model
// for the wire", §V-C).
package awe

import "fmt"

// RCTree is a grounded-capacitor RC tree driven at its root by an ideal
// source. Node 0 is the root.
type RCTree struct {
	names  map[string]int
	name   []string
	parent []int
	res    []float64 // resistance from parent to this node
	cap    []float64 // capacitance at this node
}

// NewRCTree creates a tree with just the named root.
func NewRCTree(root string) *RCTree {
	t := &RCTree{names: map[string]int{}}
	t.names[root] = 0
	t.name = []string{root}
	t.parent = []int{-1}
	t.res = []float64{0}
	t.cap = []float64{0}
	return t
}

// AddNode attaches a node below parent through resistance r, with grounded
// capacitance c. Children must be added after their parent.
func (t *RCTree) AddNode(name, parent string, r, c float64) error {
	if _, dup := t.names[name]; dup {
		return fmt.Errorf("awe: duplicate node %q", name)
	}
	p, ok := t.names[parent]
	if !ok {
		return fmt.Errorf("awe: unknown parent %q", parent)
	}
	if r <= 0 {
		return fmt.Errorf("awe: non-positive resistance at %q", name)
	}
	if c < 0 {
		return fmt.Errorf("awe: negative capacitance at %q", name)
	}
	t.names[name] = len(t.name)
	t.name = append(t.name, name)
	t.parent = append(t.parent, p)
	t.res = append(t.res, r)
	t.cap = append(t.cap, c)
	return nil
}

// AddCap adds extra grounded capacitance to an existing node.
func (t *RCTree) AddCap(name string, c float64) error {
	i, ok := t.names[name]
	if !ok {
		return fmt.Errorf("awe: unknown node %q", name)
	}
	t.cap[i] += c
	return nil
}

// N returns the node count including the root.
func (t *RCTree) N() int { return len(t.name) }

// Moments returns the first q transfer-function moments of every node:
// V_i(s) = Σ_k m_k(i)·s^k for a unit source at the root, computed by the
// classic path-tracing recursion. m_0 = 1 everywhere; m_1 is the negative
// Elmore delay. The result is indexed [order][node], order 0..q.
func (t *RCTree) Moments(q int) [][]float64 {
	n := t.N()
	m := make([][]float64, q+1)
	m[0] = make([]float64, n)
	for i := range m[0] {
		m[0][i] = 1
	}
	// Children are always after parents, so downstream sums accumulate by a
	// reverse sweep and moments propagate by a forward sweep.
	for k := 1; k <= q; k++ {
		// I[i] = Σ_{j in subtree(i)} c_j · m_{k-1}(j)
		iacc := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			iacc[i] += t.cap[i] * m[k-1][i]
			if p := t.parent[i]; p >= 0 {
				iacc[p] += iacc[i]
			}
		}
		m[k] = make([]float64, n)
		for i := 1; i < n; i++ {
			m[k][i] = m[k][t.parent[i]] - t.res[i]*iacc[i]
		}
	}
	return m
}

// NodeMoments returns the moments m_1..m_q of one node.
func (t *RCTree) NodeMoments(name string, q int) ([]float64, error) {
	i, ok := t.names[name]
	if !ok {
		return nil, fmt.Errorf("awe: unknown node %q", name)
	}
	all := t.Moments(q)
	out := make([]float64, q)
	for k := 1; k <= q; k++ {
		out[k-1] = all[k][i]
	}
	return out, nil
}

// Elmore returns the Elmore delay of a node: the negated first moment, the
// classic switch-level timing metric (Crystal/IRSIM class, paper §II).
func (t *RCTree) Elmore(name string) (float64, error) {
	m, err := t.NodeMoments(name, 1)
	if err != nil {
		return 0, err
	}
	return -m[0], nil
}

// AdmittanceMoments returns the first three driving-point admittance
// moments at the root: Y(s) = y1·s + y2·s² + y3·s³ + …, the inputs to the
// π-model reduction.
func (t *RCTree) AdmittanceMoments() (y1, y2, y3 float64) {
	m := t.Moments(2)
	for i := 0; i < t.N(); i++ {
		y1 += t.cap[i] * m[0][i]
		y2 += t.cap[i] * m[1][i]
		y3 += t.cap[i] * m[2][i]
	}
	return y1, y2, y3
}

// Pi is a π macro-model of a wire or RC subtree: CNear at the driven end,
// R in series, CFar at the receiving end.
type Pi struct {
	CNear, R, CFar float64
}

// PiFromMoments builds the unique π whose first three driving-point
// admittance moments equal (y1, y2, y3) — the O'Brien/Savarino reduction.
func PiFromMoments(y1, y2, y3 float64) (Pi, error) {
	if y2 >= 0 || y3 <= 0 {
		return Pi{}, fmt.Errorf("awe: admittance moments (%g, %g, %g) not realizable as a π", y1, y2, y3)
	}
	cf := y2 * y2 / y3
	r := -y3 * y3 / (y2 * y2 * y2)
	cn := y1 - cf
	if cf <= 0 || r <= 0 || cn < 0 {
		return Pi{}, fmt.Errorf("awe: non-physical π (CNear=%g R=%g CFar=%g)", cn, r, cf)
	}
	return Pi{CNear: cn, R: r, CFar: cf}, nil
}

// UniformLine returns the exact first three admittance moments of an
// open-ended uniform distributed RC line with total resistance R and total
// capacitance C: y1 = C, y2 = −RC²/3, y3 = 2R²C³/15.
func UniformLine(r, c float64) (y1, y2, y3 float64) {
	return c, -r * c * c / 3, 2 * r * r * c * c * c / 15
}

// PiForWire reduces a uniform wire of total resistance r and capacitance c
// to its moment-matched π model.
func PiForWire(r, c float64) (Pi, error) {
	return PiFromMoments(UniformLine(r, c))
}

// WireRC converts a wire geometry to totals using per-length parasitics.
type WireRC struct {
	ROhmPerM float64 // sheet-derived resistance per meter
	CFPerM   float64 // capacitance per meter
}

// Totals returns the total R and C of a wire of the given length.
func (w WireRC) Totals(length float64) (r, c float64) {
	return w.ROhmPerM * length, w.CFPerM * length
}

// ElmoreWithLoad returns the Elmore delay of the π driving an extra load:
// R·(CFar + CLoad); convenience for the switch-level baseline.
func (p Pi) ElmoreWithLoad(cl float64) float64 {
	return p.R * (p.CFar + cl)
}
