package awe

import (
	"fmt"
	"math"

	"qwm/internal/la"
)

// PadePoles matches 2q transfer moments m_1..m_2q (m_0 = 1 implied for RC
// trees) to a q-pole approximation and returns the poles — the core of
// asymptotic waveform evaluation (Pillage & Rohrer). Moments are indexed
// m[0] = m_1.
func PadePoles(m []float64, q int) ([]float64, error) {
	if len(m) < 2*q {
		return nil, fmt.Errorf("awe: need %d moments for %d poles, have %d", 2*q, q, len(m))
	}
	// Prepend m_0 = 1 so mm[k] = m_k.
	mm := append([]float64{1}, m...)
	// Hankel system for the denominator 1 + a1·s + … + aq·s^q:
	// Σ_{j=1..q} a_j·m_{k-j} = −m_k for k = q..2q−1.
	a := la.NewMatrix(q, q)
	b := make([]float64, q)
	for row := 0; row < q; row++ {
		k := q + row
		for j := 1; j <= q; j++ {
			a.Set(row, j-1, mm[k-j])
		}
		b[row] = -mm[k]
	}
	coef, err := la.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("awe: singular moment matrix: %w", err)
	}
	// Denominator polynomial lowest-degree-first: 1 + a1 s + … + aq s^q.
	den := make(la.Poly, q+1)
	den[0] = 1
	for j := 1; j <= q; j++ {
		den[j] = coef[j-1]
	}
	roots, err := la.RealRoots(den)
	if err != nil {
		return nil, err
	}
	if len(roots) != q {
		return nil, fmt.Errorf("awe: only %d of %d poles are real", len(roots), q)
	}
	for _, p := range roots {
		if p >= 0 {
			return nil, fmt.Errorf("awe: unstable pole %g", p)
		}
	}
	return roots, nil
}

// Residues solves the moment-matching Vandermonde system
// m_k = −Σ_i k_i / p_i^{k+1} for k = 0..q−1 (with m_0 = 1).
func Residues(m []float64, poles []float64) ([]float64, error) {
	q := len(poles)
	mm := append([]float64{1}, m...)
	if len(mm) < q {
		return nil, fmt.Errorf("awe: need %d moments for residues", q)
	}
	a := la.NewMatrix(q, q)
	b := make([]float64, q)
	for k := 0; k < q; k++ {
		for i, p := range poles {
			a.Set(k, i, -1/math.Pow(p, float64(k+1)))
		}
		b[k] = mm[k]
	}
	return la.SolveDense(a, b)
}

// StepResponse is the AWE approximation of a node's unit-step response:
// v(t) = 1 + Σ_i (k_i/p_i)·e^{p_i t}.
type StepResponse struct {
	Poles    []float64
	Residues []float64
}

// NewStepResponse runs stable AWE on a node's moments, reducing the order
// if the requested q yields unstable or complex poles (the classic AWE
// fallback; PRIMA-style methods fix this properly, §II).
func NewStepResponse(m []float64, q int) (*StepResponse, error) {
	for ; q >= 1; q-- {
		poles, err := PadePoles(m, q)
		if err != nil {
			continue
		}
		res, err := Residues(m, poles)
		if err != nil {
			continue
		}
		return &StepResponse{Poles: poles, Residues: res}, nil
	}
	return nil, fmt.Errorf("awe: no stable reduced-order model found")
}

// Eval implements wave.Waveform.
func (s *StepResponse) Eval(t float64) float64 {
	if t < 0 {
		return 0
	}
	v := 1.0
	for i, p := range s.Poles {
		v += s.Residues[i] / p * math.Exp(p*t)
	}
	return v
}

// Span implements wave.Waveform: the response settles after a few time
// constants of the slowest pole.
func (s *StepResponse) Span() (float64, float64) {
	slowest := 0.0
	for _, p := range s.Poles {
		if tc := -1 / p; tc > slowest {
			slowest = tc
		}
	}
	return 0, 10 * slowest
}

// Crossing implements wave.Crosser by bisection (the response is smooth).
func (s *StepResponse) Crossing(level float64, rising bool) (float64, bool) {
	_, tEnd := s.Span()
	lo, hi := 0.0, tEnd
	f := func(t float64) float64 { return s.Eval(t) - level }
	if f(lo)*f(hi) > 0 {
		return 0, false
	}
	if rising && f(lo) > 0 || !rising && f(lo) < 0 {
		return 0, false
	}
	for i := 0; i < 100 && hi-lo > 1e-18+1e-12*hi; i++ {
		mid := 0.5 * (lo + hi)
		if f(lo)*f(mid) <= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi), true
}
