package awe

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qwm/internal/circuit"
	"qwm/internal/mos"
	"qwm/internal/spice"
	"qwm/internal/wave"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestTreeValidation(t *testing.T) {
	tr := NewRCTree("in")
	if err := tr.AddNode("a", "in", 100, 1e-15); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddNode("a", "in", 100, 1e-15); err == nil {
		t.Error("duplicate accepted")
	}
	if err := tr.AddNode("b", "nope", 100, 1e-15); err == nil {
		t.Error("unknown parent accepted")
	}
	if err := tr.AddNode("b", "a", 0, 1e-15); err == nil {
		t.Error("zero resistance accepted")
	}
	if err := tr.AddNode("b", "a", 10, -1); err == nil {
		t.Error("negative cap accepted")
	}
	if err := tr.AddCap("a", 5e-15); err != nil {
		t.Fatal(err)
	}
	if err := tr.AddCap("zzz", 1); err == nil {
		t.Error("AddCap unknown node accepted")
	}
	if _, err := tr.Elmore("zzz"); err == nil {
		t.Error("Elmore of unknown node accepted")
	}
}

func TestSingleRCMoments(t *testing.T) {
	const (
		R = 1e3
		C = 1e-12
	)
	tr := NewRCTree("in")
	_ = tr.AddNode("out", "in", R, C)
	m, err := tr.NodeMoments("out", 3)
	if err != nil {
		t.Fatal(err)
	}
	// V(s) = 1/(1+sRC): m_k = (−RC)^k.
	for k, want := range []float64{-R * C, R * R * C * C, -R * R * R * C * C * C} {
		if !feq(m[k], want, 1e-12) {
			t.Errorf("m_%d = %g, want %g", k+1, m[k], want)
		}
	}
	d, _ := tr.Elmore("out")
	if !feq(d, R*C, 1e-12) {
		t.Errorf("Elmore = %g, want %g", d, R*C)
	}
}

func TestLadderElmore(t *testing.T) {
	// Two-segment ladder: Elmore(out) = R1(C1+C2) + R2·C2.
	tr := NewRCTree("in")
	_ = tr.AddNode("mid", "in", 100, 2e-12)
	_ = tr.AddNode("out", "mid", 300, 1e-12)
	d, _ := tr.Elmore("out")
	want := 100*(2e-12+1e-12) + 300*1e-12
	if !feq(d, want, 1e-12) {
		t.Errorf("Elmore = %g, want %g", d, want)
	}
	// A side branch loads the shared path only.
	_ = tr.AddNode("side", "mid", 500, 4e-12)
	d2, _ := tr.Elmore("out")
	want2 := want + 100*4e-12
	if !feq(d2, want2, 1e-12) {
		t.Errorf("Elmore with branch = %g, want %g", d2, want2)
	}
}

func TestAWESingleRCExact(t *testing.T) {
	const (
		R = 2e3
		C = 0.5e-12
	)
	tr := NewRCTree("in")
	_ = tr.AddNode("out", "in", R, C)
	m, _ := tr.NodeMoments("out", 2)
	sr, err := NewStepResponse(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Poles) != 1 || !feq(sr.Poles[0], -1/(R*C), 1e-9) {
		t.Fatalf("pole = %v, want %g", sr.Poles, -1/(R*C))
	}
	for _, tt := range []float64{0.3 * R * C, R * C, 3 * R * C} {
		want := 1 - math.Exp(-tt/(R*C))
		if !feq(sr.Eval(tt), want, 1e-9) {
			t.Errorf("v(%g) = %g, want %g", tt, sr.Eval(tt), want)
		}
	}
	tc, ok := sr.Crossing(0.5, true)
	if !ok || !feq(tc, R*C*math.Ln2, 1e-6) {
		t.Errorf("50%% crossing = %g, want %g", tc, R*C*math.Ln2)
	}
}

// AWE with two poles should predict the 50 % delay of a 5-segment ladder to
// a few percent of a full SPICE solve of the same network.
func TestAWELadderMatchesSpice(t *testing.T) {
	const segs = 5
	tr := NewRCTree("in")
	n := &circuit.Netlist{}
	n.AddVSource("vin", "in", "0", wave.Step{At: 0, Low: 0, High: 1})
	prev := "in"
	for i := 1; i <= segs; i++ {
		name := "n" + string(rune('0'+i))
		_ = tr.AddNode(name, prev, 200, 0.2e-12)
		n.AddResistor("r"+name, prev, name, 200)
		n.AddCapacitor("c"+name, name, "0", 0.2e-12)
		prev = name
	}
	m, _ := tr.NodeMoments(prev, 6)
	sr, err := NewStepResponse(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	tAWE, ok := sr.Crossing(0.5, true)
	if !ok {
		t.Fatal("AWE response never crossed 50%")
	}
	sim, err := spice.New(n, mos.CMOSP35(), false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Transient(spice.Options{TStop: 5e-9, Step: 1e-12, IC: map[string]float64{}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := res.Waveform(prev)
	tSp, ok := w.Crossing(0.5, true)
	if !ok {
		t.Fatal("spice never crossed 50%")
	}
	if e := math.Abs(tAWE-tSp) / tSp; e > 0.05 {
		t.Errorf("AWE delay %g vs spice %g (%.1f%% off)", tAWE, tSp, 100*e)
	}
}

func TestUniformLinePi(t *testing.T) {
	const (
		R = 1e3
		C = 2e-12
	)
	pi, err := PiForWire(R, C)
	if err != nil {
		t.Fatal(err)
	}
	// O'Brien/Savarino on a uniform line: CFar = 5C/6, CNear = C/6, R = 12R/25.
	if !feq(pi.CFar, 5*C/6, 1e-9) || !feq(pi.CNear, C/6, 1e-9) || !feq(pi.R, 12*R/25, 1e-9) {
		t.Errorf("pi = %+v", pi)
	}
	// Total capacitance is preserved.
	if !feq(pi.CNear+pi.CFar, C, 1e-12) {
		t.Error("pi does not conserve capacitance")
	}
}

// Property: the π model's own admittance moments reproduce the moments it
// was built from.
func TestPiMomentRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		res := 10 + 5e3*r.Float64()
		c := (0.1 + 5*r.Float64()) * 1e-12
		pi, err := PiForWire(res, c)
		if err != nil {
			return false
		}
		tr := NewRCTree("in")
		if err := tr.AddCap("in", pi.CNear); err != nil {
			return false
		}
		if err := tr.AddNode("far", "in", pi.R, pi.CFar); err != nil {
			return false
		}
		y1, y2, y3 := tr.AdmittanceMoments()
		w1, w2, w3 := UniformLine(res, c)
		return feq(y1, w1, 1e-9) && feq(y2, w2, 1e-9) && feq(y3, w3, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Elmore delay is positive and non-decreasing along any root path.
func TestElmoreMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := NewRCTree("in")
		prev := "in"
		var delays []float64
		for i := 0; i < 3+r.Intn(8); i++ {
			name := fmt.Sprintf("n%d", i)
			if err := tr.AddNode(name, prev, 10+1e3*r.Float64(), r.Float64()*1e-12); err != nil {
				return false
			}
			d, err := tr.Elmore(name)
			if err != nil {
				return false
			}
			delays = append(delays, d)
			prev = name
		}
		for i := 1; i < len(delays); i++ {
			if delays[i] < delays[i-1] {
				return false
			}
		}
		return delays[0] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPadeValidation(t *testing.T) {
	if _, err := PadePoles([]float64{1}, 2); err == nil {
		t.Error("insufficient moments accepted")
	}
	if _, err := Residues([]float64{}, []float64{-1, -2}); err == nil {
		t.Error("insufficient moments for residues accepted")
	}
	if _, err := PiFromMoments(1e-12, 1e-12, 1e-12); err == nil {
		t.Error("non-physical moments accepted")
	}
}
