package awe

import (
	"math"
	"testing"
)

// uniformLadder discretizes a uniform RC line of total resistance r and
// capacitance c into n equal segments.
func uniformLadder(n int, r, c float64) []ChainSeg {
	segs := make([]ChainSeg, n)
	for i := range segs {
		segs[i] = ChainSeg{R: r / float64(n), C: c / float64(n)}
	}
	return segs
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
		return d / m
	}
	return d
}

// The chain specialization must agree with the general RCTree path-tracing
// recursion on the same ladder.
func TestChainMomentsMatchRCTree(t *testing.T) {
	segs := []ChainSeg{{R: 100, C: 1e-15}, {R: 250, C: 3e-15}, {R: 80, C: 0.5e-15}, {R: 500, C: 2e-15}}
	const cload = 4e-15
	tree := NewRCTree("in")
	prev := "in"
	for i, s := range segs {
		name := string(rune('a' + i))
		if err := tree.AddNode(name, prev, s.R, s.C); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	if err := tree.AddCap(prev, cload); err != nil {
		t.Fatal(err)
	}
	want, err := tree.NodeMoments(prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := ChainMoments(segs, cload)
	if relDiff(m1, want[0]) > 1e-12 || relDiff(m2, want[1]) > 1e-12 {
		t.Fatalf("ChainMoments = (%g, %g), RCTree = (%g, %g)", m1, m2, want[0], want[1])
	}
}

// Reduction must preserve total R, total C and the exit Elmore delay exactly
// (to rounding), for any external load, while shrinking the ladder.
func TestReduceChainPreservesElmoreAndTotals(t *testing.T) {
	segs := uniformLadder(40, 2000, 80e-15)
	// Perturb so the ladder is not perfectly uniform.
	for i := range segs {
		segs[i].R *= 1 + 0.3*math.Sin(float64(i))
		segs[i].C *= 1 + 0.2*math.Cos(float64(3*i))
	}
	for _, cload := range []float64{0, 5e-15, 50e-15} {
		red, errEst := ReduceChain(segs, cload, 0.05)
		if len(red) >= len(segs) {
			t.Fatalf("cload=%g: no reduction (%d -> %d segments)", cload, len(segs), len(red))
		}
		r0, c0 := ChainTotals(segs)
		r1, c1 := ChainTotals(red)
		if relDiff(r0, r1) > 1e-12 || relDiff(c0, c1) > 1e-12 {
			t.Fatalf("cload=%g: totals changed: R %g->%g, C %g->%g", cload, r0, r1, c0, c1)
		}
		m1f, m2f := ChainMoments(segs, cload)
		m1r, m2r := ChainMoments(red, cload)
		if relDiff(m1f, m1r) > 1e-9 {
			t.Fatalf("cload=%g: Elmore changed: m1 %g -> %g", cload, m1f, m1r)
		}
		if got := math.Abs(m2r-m2f) / (m1f * m1f); got > 0.05 {
			t.Fatalf("cload=%g: second-moment mismatch %g exceeds tol", cload, got)
		}
		if errEst > 0.05 {
			t.Fatalf("cload=%g: reported error estimate %g exceeds tol", cload, errEst)
		}
	}
}

// A tighter tolerance must never return fewer segments than a looser one,
// and both must stay within their bound.
func TestReduceChainTolControlsOrder(t *testing.T) {
	segs := uniformLadder(64, 5000, 200e-15)
	loose, looseErr := ReduceChain(segs, 10e-15, 0.2)
	tight, tightErr := ReduceChain(segs, 10e-15, 1e-4)
	if len(tight) < len(loose) {
		t.Fatalf("tight tol gave %d segments, loose gave %d", len(tight), len(loose))
	}
	if looseErr > 0.2 || tightErr > 1e-4 {
		t.Fatalf("error estimates exceed bounds: loose %g, tight %g", looseErr, tightErr)
	}
	if len(loose) > 4 {
		t.Fatalf("loose tol should collapse hard, got %d segments", len(loose))
	}
}

// Degenerate ladders: capacitance-free runs collapse to one resistor; short
// runs pass through untouched.
func TestReduceChainDegenerate(t *testing.T) {
	red, _ := ReduceChain([]ChainSeg{{R: 10}, {R: 20}, {R: 30}}, 1e-15, 0.05)
	if len(red) != 1 || red[0].R != 60 || red[0].C != 0 {
		t.Fatalf("pure-R ladder reduced to %+v, want one 60-ohm segment", red)
	}
	short := []ChainSeg{{R: 10, C: 1e-15}, {R: 20, C: 2e-15}}
	if got, _ := ReduceChain(short, 0, 0.05); len(got) != 2 {
		t.Fatalf("2-segment ladder should be returned unchanged, got %d", len(got))
	}
}

// PiFromChain on a finely discretized uniform line must converge to the
// closed-form PiForWire values.
func TestPiFromChainMatchesUniformLine(t *testing.T) {
	const r, c = 3000.0, 120e-15
	want, err := PiForWire(r, c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PiFromChain(uniformLadder(400, r, c))
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(got.CNear, want.CNear) > 0.02 || relDiff(got.R, want.R) > 0.02 || relDiff(got.CFar, want.CFar) > 0.02 {
		t.Fatalf("PiFromChain = %+v, want ~%+v", got, want)
	}
}
