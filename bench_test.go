// Benchmarks regenerating every table and figure of the paper's evaluation
// (§V), plus the ablations DESIGN.md calls out. Each benchmark body is one
// full engine evaluation of the table's/figure's workload, so ns/op ratios
// between Table*QWM and Table*Spice* benchmarks are the paper's speed-up
// columns.
package qwm_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"qwm/internal/bench"
	"qwm/internal/devmodel"
	"qwm/internal/la"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/sc"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

var (
	hOnce sync.Once
	hVal  *bench.Harness
	hErr  error
)

func harness(b *testing.B) *bench.Harness {
	hOnce.Do(func() { hVal, hErr = bench.NewHarness(mos.CMOSP35()) })
	if hErr != nil {
		b.Fatal(hErr)
	}
	return hVal
}

func table1Workloads(b *testing.B) []*stages.Workload {
	h := harness(b)
	inv, err := stages.Inverter(h.Tech, 0.8e-6, 1.6e-6, 15e-15, 0)
	if err != nil {
		b.Fatal(err)
	}
	ws := []*stages.Workload{inv}
	for _, n := range []int{2, 3, 4} {
		g, err := stages.NAND(h.Tech, n, 0.8e-6, 1.6e-6, 15e-15, 0)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, g)
	}
	return ws
}

// --- Table I: logic gates ---

func BenchmarkTable1QWM(b *testing.B) {
	h := harness(b)
	for _, w := range table1Workloads(b) {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RunQWM(w, qwm.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1Spice1ps(b *testing.B) {
	h := harness(b)
	for _, w := range table1Workloads(b) {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RunSpice(w, 1e-12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1Spice10ps(b *testing.B) {
	h := harness(b)
	for _, w := range table1Workloads(b) {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.RunSpice(w, 10e-12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table II: random stacks, K = 5..10 ---

func table2Workload(b *testing.B, k int) *stages.Workload {
	h := harness(b)
	w, err := stages.RandomStack(h.Tech, k, int64(k*10))
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func BenchmarkTable2QWM(b *testing.B) {
	h := harness(b)
	for k := 5; k <= 10; k++ {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			w := table2Workload(b, k)
			for i := 0; i < b.N; i++ {
				if _, err := h.RunQWM(w, qwm.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2Spice1ps(b *testing.B) {
	h := harness(b)
	for k := 5; k <= 10; k++ {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			w := table2Workload(b, k)
			for i := 0; i < b.N; i++ {
				if _, err := h.RunSpice(w, 1e-12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable2Spice10ps(b *testing.B) {
	h := harness(b)
	for k := 5; k <= 10; k++ {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			w := table2Workload(b, k)
			for i := 0; i < b.N; i++ {
				if _, err := h.RunSpice(w, 10e-12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures ---

// Fig. 5: the device I/V surface dump (pure table queries).
func BenchmarkFig5Surface(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 7: reconstructing the stack discharge currents from a SPICE run.
func BenchmarkFig7Currents(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 8: characterization fit-quality sweep.
func BenchmarkFig8Fit(b *testing.B) {
	h := harness(b)
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig. 9: the 6-NMOS carry-chain stack, one benchmark per engine.
func BenchmarkFig9CarryChain(b *testing.B) {
	h := harness(b)
	w, err := stages.CarryChainStack(h.Tech)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("qwm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWM(w, qwm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spice1ps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunSpice(w, 1e-12); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Fig. 10: the decoder tree with AWE π-modeled wires.
func BenchmarkFig10Decoder(b *testing.B) {
	h := harness(b)
	w, err := stages.DecoderTree(h.Tech, 3, 2e-6, 50e-6, 20e-15, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("qwm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWM(w, qwm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spice1ps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunSpice(w, 1e-12); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// Tridiagonal + Sherman–Morrison vs dense LU inside QWM's Newton update
// (paper §IV-B: "tridiagonal method gives almost twice speedup over LU").
func BenchmarkAblationTridiagVsLU(b *testing.B) {
	h := harness(b)
	w := table2Workload(b, 10)
	b.Run("tridiag", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWM(w, qwm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("denseLU", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWM(w, qwm.Options{UseDenseLU: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Characterized table vs direct analytic golden-model queries inside QWM.
func BenchmarkAblationTableVsAnalytic(b *testing.B) {
	h := harness(b)
	w := table2Workload(b, 8)
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWM(w, qwm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWMAnalytic(w, qwm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Frozen region-start capacitances (the paper's presentation) vs the secant
// charge-based second pass.
func BenchmarkAblationFreezeCaps(b *testing.B) {
	h := harness(b)
	w := table2Workload(b, 8)
	b.Run("secant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWM(w, qwm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frozen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.RunQWM(w, qwm.Options{FreezeCaps: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Successive-chord integration (TETA-class) vs QWM on the identical chain.
func BenchmarkAblationSCvsQWM(b *testing.B) {
	h := harness(b)
	w := table2Workload(b, 6)
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: h.Tech, Lib: h.Lib, Stage: w.Stage, Path: w.Path,
		Inputs: w.Inputs, Loads: w.Loads, V0: w.IC,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("qwm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := qwm.Evaluate(ch, qwm.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sc1ps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sc.Evaluate(ch, sc.Options{Step: 1e-12, TStop: w.TStop}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Parallel STA (full-flow benchmark) ---

// BenchmarkSTAParallel measures the levelized STA engine over a 4-bit row
// decoder (4 address inverters, 16 four-input NANDs, 16 row drivers) at
// several worker-pool widths. Every iteration uses a fresh Analyzer, so the
// delay cache is cold and each of the 36 stages is QWM-evaluated in both
// directions — the worst case the parallel engine is built for. The serial
// (workers=1) run is the baseline; identical results at every width are
// asserted before timing starts.
func BenchmarkSTAParallel(b *testing.B) {
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	nl, ins, outs, err := stages.DecoderNetlist(tech, 4, 1e-6, 10e-15)
	if err != nil {
		b.Fatal(err)
	}
	primary := map[string]sta.Arrival{}
	for i, in := range ins {
		primary[in] = sta.Arrival{
			Rise: float64(i) * 17e-12, Fall: float64(i) * 13e-12,
			RiseSlew: 20e-12 + float64(i)*7e-12, FallSlew: 15e-12 + float64(i)*5e-12,
		}
	}
	analyze := func(workers int) *sta.Result {
		a := sta.New(tech, lib, sta.Config{Workers: workers})
		res, err := a.AnalyzeContext(nil, sta.Request{Netlist: nl, Primary: primary, Outputs: outs})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	ref := analyze(1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if got := analyze(workers); !reflect.DeepEqual(got.Arrivals, ref.Arrivals) ||
				got.WorstArrival != ref.WorstArrival {
				b.Fatalf("workers=%d results differ from serial baseline", workers)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				analyze(workers)
			}
		})
	}
}

// One-time characterization cost (excluded from the runtime comparisons, as
// in the paper's §V-B fairness note).
func BenchmarkCharacterize(b *testing.B) {
	tech := mos.CMOSP35()
	for i := 0; i < b.N; i++ {
		if _, err := devmodel.Characterize(&tech.N, tech, tech.LMin, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmark of the linear-solver kernels at the QWM system size.
func BenchmarkSolverKernels(b *testing.B) {
	const n = 11 // K = 10 stack + τ′
	tri := la.NewTridiag(n)
	for i := 0; i < n; i++ {
		tri.Diag[i] = 4
		if i < n-1 {
			tri.Sub[i] = -1
			tri.Sup[i] = -1
		}
	}
	u := make([]float64, n)
	v := make([]float64, n)
	v[n-1] = 1
	for i := 0; i < n-2; i++ {
		u[i] = 0.3
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i + 1)
	}
	b.Run("shermanMorrison", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tri.SolveRankOne(u, v, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shermanMorrisonInto", func(b *testing.B) {
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		cp := make([]float64, n-1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := tri.SolveRankOneInto(u, v, rhs, x, y, z, cp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("denseLU", func(b *testing.B) {
		dense := tri.Dense()
		for i := 0; i < n; i++ {
			dense.Add(i, n-1, u[i])
		}
		for i := 0; i < b.N; i++ {
			if _, err := la.SolveDense(dense, rhs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("denseLUInto", func(b *testing.B) {
		dense := tri.Dense()
		for i := 0; i < n; i++ {
			dense.Add(i, n-1, u[i])
		}
		x := make([]float64, n)
		lu := la.NewMatrix(n, n)
		piv := make([]int, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := la.SolveDenseInto(dense, rhs, x, lu, piv); err != nil {
				b.Fatal(err)
			}
		}
	})
}
