module qwm

go 1.22
