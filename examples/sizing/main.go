// Sizing: a design-loop application of QWM's speed. Optimizing the widths
// of a 6-transistor discharge stack under a fixed area budget takes several
// hundred delay evaluations — seconds with QWM, minutes with a SPICE-class
// engine. The optimizer recovers the classic tapered profile (widest at the
// rail, where the device carries every node's discharge current).
//
// The second half moves the same loop up to the netlist level: sizing a
// decoder row driver with a full STA run as the objective, once re-analyzing
// from scratch on every evaluation and once through the incremental (ECO)
// scheduler. Both loops produce bit-identical widths — the incremental run
// re-evaluates only the edited devices' dirty cones.
package main

import (
	"fmt"
	"log"
	"time"

	"qwm/internal/bench"
	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/sizing"
	"qwm/internal/sta"
	"qwm/internal/stages"
)

func main() {
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		log.Fatal(err)
	}
	const cl = 8e-15
	eval := func(widths []float64) (float64, error) {
		w, err := stages.Stack(tech, widths, cl, 0)
		if err != nil {
			return 0, err
		}
		run, err := h.RunQWM(w, qwm.Options{})
		if err != nil {
			return 0, err
		}
		return run.Delay, nil
	}

	init := []float64{1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6}
	fmt.Println("minimizing the delay of a 6-NMOS stack, Σw = 9 µm fixed")
	start := time.Now()
	res, err := sizing.Minimize(sizing.Problem{
		Eval: eval,
		Init: init,
		WMin: 0.6e-6,
		WMax: 4e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nuniform:   %.2f ps\n", res.InitDelay*1e12)
	fmt.Printf("optimized: %.2f ps  (%.1f%% faster)\n",
		res.Delay*1e12, 100*(res.InitDelay-res.Delay)/res.InitDelay)
	fmt.Printf("%d QWM evaluations in %v (%.0f µs per evaluation)\n",
		res.Evaluations, elapsed, float64(elapsed.Microseconds())/float64(res.Evaluations))
	fmt.Println("\nwidths, rail → output (µm):")
	for i, w := range res.Widths {
		fmt.Printf("  M%d: %.2f\n", i+1, w*1e6)
	}
	fmt.Println("\n(the taper is the textbook result: the rail device conducts the")
	fmt.Println("discharge current of every node above it)")

	decoderECO(tech)
}

// decoderECO sizes the decoder's row-0 driver pair (mnd0/mpd0) against the
// row's STA arrival, timing the optimizer loop with a from-scratch analysis
// per evaluation and again with the incremental (ECO) scheduler.
func decoderECO(tech *mos.Tech) {
	fmt.Println("\nsizing a decoder row driver against a netlist-level STA objective")

	run := func(full bool) (*sizing.Result, *sizing.STAEvaluator, time.Duration) {
		nl, ins, outs, err := stages.DecoderNetlist(tech, 3, 1e-6, 10e-15)
		if err != nil {
			log.Fatal(err)
		}
		primary := map[string]sta.Arrival{}
		for _, in := range ins {
			primary[in] = sta.Arrival{}
		}
		var devs []*circuit.Transistor
		for _, tr := range nl.Transistors {
			if tr.Name == "mnd0" || tr.Name == "mpd0" {
				devs = append(devs, tr)
			}
		}
		ev := &sizing.STAEvaluator{
			Analyzer: sta.New(tech, devmodel.NewLibrary(tech)),
			Netlist:  nl, Primary: primary,
			// Row 0's arrival is the objective: the rows are symmetric, so
			// the all-rows worst arrival cannot be improved from one row.
			Outputs: outs[:1],
			Devices: devs, FullReanalysis: full,
		}
		init := make([]float64, len(devs))
		for i, d := range devs {
			init[i] = d.W
		}
		start := time.Now()
		res, err := sizing.Minimize(sizing.Problem{
			Eval: ev.Eval, Init: init, WMin: 0.6e-6, WMax: 4e-6, Sweeps: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res, ev, time.Since(start)
	}

	fullRes, fullEv, fullT := run(true)
	incRes, incEv, incT := run(false)

	fmt.Printf("  from-scratch loop: %d analyses in %v, arrival %.2f ps -> %.2f ps\n",
		fullEv.Analyses, fullT, fullRes.InitDelay*1e12, fullRes.Delay*1e12)
	fmt.Printf("  incremental loop:  %d analyses in %v, arrival %.2f ps -> %.2f ps\n",
		incEv.Analyses, incT, incRes.InitDelay*1e12, incRes.Delay*1e12)
	fmt.Printf("  eco accounting: %d stages dirtied, %d replayed, %d early stops\n",
		incEv.Dirty, incEv.Skipped, incEv.EarlyStops)
	same := fullRes.Delay == incRes.Delay
	for i := range fullRes.Widths {
		same = same && fullRes.Widths[i] == incRes.Widths[i]
	}
	fmt.Printf("  bit-identical widths and objective: %v\n", same)
	fmt.Printf("  optimized widths: mnd0 %.2f µm, mpd0 %.2f µm\n",
		incRes.Widths[0]*1e6, incRes.Widths[1]*1e6)
}
