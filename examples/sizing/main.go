// Sizing: a design-loop application of QWM's speed. Optimizing the widths
// of a 6-transistor discharge stack under a fixed area budget takes several
// hundred delay evaluations — seconds with QWM, minutes with a SPICE-class
// engine. The optimizer recovers the classic tapered profile (widest at the
// rail, where the device carries every node's discharge current).
package main

import (
	"fmt"
	"log"
	"time"

	"qwm/internal/bench"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/sizing"
	"qwm/internal/stages"
)

func main() {
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		log.Fatal(err)
	}
	const cl = 8e-15
	eval := func(widths []float64) (float64, error) {
		w, err := stages.Stack(tech, widths, cl, 0)
		if err != nil {
			return 0, err
		}
		run, err := h.RunQWM(w, qwm.Options{})
		if err != nil {
			return 0, err
		}
		return run.Delay, nil
	}

	init := []float64{1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6, 1.5e-6}
	fmt.Println("minimizing the delay of a 6-NMOS stack, Σw = 9 µm fixed")
	start := time.Now()
	res, err := sizing.Minimize(sizing.Problem{
		Eval: eval,
		Init: init,
		WMin: 0.6e-6,
		WMax: 4e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nuniform:   %.2f ps\n", res.InitDelay*1e12)
	fmt.Printf("optimized: %.2f ps  (%.1f%% faster)\n",
		res.Delay*1e12, 100*(res.InitDelay-res.Delay)/res.InitDelay)
	fmt.Printf("%d QWM evaluations in %v (%.0f µs per evaluation)\n",
		res.Evaluations, elapsed, float64(elapsed.Microseconds())/float64(res.Evaluations))
	fmt.Println("\nwidths, rail → output (µm):")
	for i, w := range res.Widths {
		fmt.Printf("  M%d: %.2f\n", i+1, w*1e6)
	}
	fmt.Println("\n(the taper is the textbook result: the rail device conducts the")
	fmt.Println("discharge current of every node above it)")
}
