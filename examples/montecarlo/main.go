// Monte Carlo: statistical timing over process variation. Each of 1000
// samples draws per-device threshold shifts (σ = 25 mV) and width
// deviations (σ = 3 %) for a 5-transistor discharge stack and re-evaluates
// it with QWM — interactive statistical timing that a SPICE-class engine
// turns into an overnight job.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"qwm/internal/devmodel"
	"qwm/internal/mc"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/wave"
)

func main() {
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)
	tbl, err := lib.Table(mos.NMOS, tech.LMin)
	if err != nil {
		log.Fatal(err)
	}
	ch := &qwm.Chain{Pol: mos.NMOS, VDD: tech.VDD}
	for i := 0; i < 5; i++ {
		var g wave.Waveform = wave.DC(tech.VDD)
		if i == 0 {
			g = wave.Step{At: 0, Low: 0, High: tech.VDD}
		}
		ch.Elems = append(ch.Elems, &qwm.Elem{Model: tbl, W: 1.2e-6, Gate: g})
		ch.Caps = append(ch.Caps, qwm.NodeCap{Fixed: 6e-15})
		ch.V0 = append(ch.V0, tech.VDD)
	}

	const n = 1000
	v := mc.Variation{VthSigma: 25e-3, WidthSigmaRel: 0.03}
	start := time.Now()
	st, err := mc.Run(ch, v, n, 42, qwm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("%d-sample Monte Carlo of a 5-NMOS stack in %v (%.0f µs/sample)\n",
		st.Samples, elapsed, float64(elapsed.Microseconds())/float64(st.Samples))
	fmt.Printf("variation: σ(Vth) = %.0f mV, σ(W)/W = %.0f %%\n\n",
		v.VthSigma*1e3, v.WidthSigmaRel*100)
	fmt.Printf("nominal : %7.2f ps\n", st.NominalDelay*1e12)
	fmt.Printf("mean    : %7.2f ps\n", st.Mean*1e12)
	fmt.Printf("sigma   : %7.2f ps  (%.1f %% of mean)\n", st.Std*1e12, 100*st.Std/st.Mean)
	fmt.Printf("p50     : %7.2f ps\n", st.P50*1e12)
	fmt.Printf("p95     : %7.2f ps\n", st.P95*1e12)
	fmt.Printf("p99     : %7.2f ps\n", st.P99*1e12)
	fmt.Printf("mean+3σ : %7.2f ps  <- the STA sign-off corner\n", st.ThreeSigma*1e12)

	// A coarse text histogram.
	fmt.Println("\ndistribution:")
	const bins = 12
	lo, hi := st.Min, st.Max
	counts := histogram(ch, v, n, lo, hi, bins)
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for b := 0; b < bins; b++ {
		left := lo + (hi-lo)*float64(b)/bins
		bar := strings.Repeat("#", counts[b]*48/max(maxC, 1))
		fmt.Printf("%7.2f ps | %s\n", left*1e12, bar)
	}
}

// histogram re-runs the deterministic draw to bin the same samples.
func histogram(ch *qwm.Chain, v mc.Variation, n int, lo, hi float64, bins int) []int {
	st, err := mc.RunSamples(ch, v, n, 42, qwm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	counts := make([]int, bins)
	for _, d := range st {
		b := int(float64(bins) * (d - lo) / (hi - lo))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
