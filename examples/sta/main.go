// STA: full static timing analysis over a multi-stage transistor netlist.
// A 4-bit ripple path — NAND2 stages feeding inverters — is partitioned
// into logic stages, each stage's rise/fall delays are evaluated with QWM,
// and arrival times propagate to the primary output. A second, incremental
// run after upsizing one driver shows the stage-delay cache at work.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"qwm/internal/circuit"
	"qwm/internal/devmodel"
	"qwm/internal/mos"
	"qwm/internal/sta"
)

func main() {
	tech := mos.CMOSP35()
	lib := devmodel.NewLibrary(tech)

	nl := rippleChain(tech, 4)
	a := sta.New(tech, lib)

	start := time.Now()
	res, err := a.AnalyzeContext(nil, sta.Request{
		Netlist: nl,
		Primary: map[string]sta.Arrival{"a0": {}, "b0": {}, "b1": {}, "b2": {}, "b3": {}},
		Outputs: []string{"out"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full analysis: %d stage evaluations in %v\n", res.StagesEvaluated, time.Since(start))
	fmt.Printf("worst arrival at %q: %.2f ps\n", res.WorstOutput, res.WorstArrival*1e12)
	fmt.Printf("critical path (latest first): %v\n", res.CriticalPath)

	fmt.Println("\nper-net arrivals (ps):")
	for _, net := range []string{"x0", "y0", "x1", "y1", "x2", "y2", "x3", "out"} {
		ar := res.Arrivals[net]
		fmt.Printf("  %-4s rise %7.2f  fall %7.2f\n", net, ar.Rise*1e12, ar.Fall*1e12)
	}

	// Incremental: double the width of the first NAND's devices and re-run.
	for _, t := range nl.Transistors[:3] {
		t.W *= 2
	}
	start = time.Now()
	res2, err := a.AnalyzeContext(nil, sta.Request{
		Netlist: nl,
		Primary: map[string]sta.Arrival{"a0": {}, "b0": {}, "b1": {}, "b2": {}, "b3": {}},
		Outputs: []string{"out"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter upsizing stage 0: %d stage evaluation(s) in %v (others cached)\n",
		res2.StagesEvaluated, time.Since(start))
	fmt.Printf("worst arrival: %.2f ps (was %.2f ps, improved %.2f ps)\n",
		res2.WorstArrival*1e12, res.WorstArrival*1e12,
		math.Abs(res.WorstArrival-res2.WorstArrival)*1e12)
}

// rippleChain builds n NAND2+INV stages: x_i = NAND(prev, b_i), y_i = NOT x_i.
func rippleChain(tech *mos.Tech, n int) *circuit.Netlist {
	nl := &circuit.Netlist{}
	prev := "a0"
	for i := 0; i < n; i++ {
		x := fmt.Sprintf("x%d", i)
		y := fmt.Sprintf("y%d", i)
		if i == n-1 {
			y = "out"
		}
		b := fmt.Sprintf("b%d", i)
		mid := fmt.Sprintf("t%d", i)
		// NAND2(prev, b) -> x
		nl.AddTransistor(&circuit.Transistor{Name: "mn" + x + "a", Kind: circuit.KindNMOS, Drain: mid, Gate: prev, Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
		nl.AddTransistor(&circuit.Transistor{Name: "mn" + x + "b", Kind: circuit.KindNMOS, Drain: x, Gate: b, Source: mid, Body: "0", W: 1e-6, L: tech.LMin})
		nl.AddTransistor(&circuit.Transistor{Name: "mp" + x + "a", Kind: circuit.KindPMOS, Drain: x, Gate: prev, Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
		nl.AddTransistor(&circuit.Transistor{Name: "mp" + x + "b", Kind: circuit.KindPMOS, Drain: x, Gate: b, Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
		// INV x -> y
		nl.AddTransistor(&circuit.Transistor{Name: "mn" + y, Kind: circuit.KindNMOS, Drain: y, Gate: x, Source: "0", Body: "0", W: 1e-6, L: tech.LMin})
		nl.AddTransistor(&circuit.Transistor{Name: "mp" + y, Kind: circuit.KindPMOS, Drain: y, Gate: x, Source: "vdd", Body: "vdd", W: 2e-6, L: tech.LMin})
		prev = y
	}
	nl.AddCapacitor("cl", "out", "0", 15e-15)
	return nl
}
