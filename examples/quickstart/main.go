// Quickstart: build a 3-input NAND gate, evaluate its worst-case falling
// transition with piecewise quadratic waveform matching, and print the
// timing numbers a static timing analyzer would consume.
package main

import (
	"fmt"
	"log"

	"qwm/internal/bench"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/stages"
)

func main() {
	// The technology: a 0.35 µm, 3.3 V process with a characterized device
	// table (built once, cached in the harness).
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		log.Fatal(err)
	}

	// A NAND3 with 1 µm NMOS, 2 µm PMOS and a 20 fF load. The bottom input
	// switches at t = 0 with the stack precharged — the STA worst case.
	w, err := stages.NAND(tech, 3, 1e-6, 2e-6, 20e-15, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — K = %d series transistors, output %q\n",
		w.Name, w.Path.Transistors(), w.Output)

	// Evaluate with QWM.
	run, err := h.RunQWM(w, qwm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QWM:   delay = %.2f ps, slew = %.2f ps  (%d regions, %v)\n",
		run.Delay*1e12, run.Slew*1e12, run.Steps, run.Runtime)

	// Cross-check against the SPICE-class baseline at 1 ps steps.
	ref, err := h.RunSpice(w, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPICE: delay = %.2f ps, slew = %.2f ps  (%d steps,   %v)\n",
		ref.Delay*1e12, ref.Slew*1e12, ref.Steps, ref.Runtime)
	fmt.Printf("delay error %.2f%%, speed-up %.0f×\n",
		100*(run.Delay-ref.Delay)/ref.Delay, float64(ref.Runtime)/float64(run.Runtime))

	// The QWM output waveform is an analytical piecewise quadratic; sample
	// a few points.
	fmt.Println("\n t(ps)   V(out)")
	for _, t := range []float64{0, 50e-12, 100e-12, 150e-12, 200e-12, 300e-12} {
		fmt.Printf("%6.0f   %6.3f\n", t*1e12, run.Output.Eval(t))
	}
}
