// Characterize: the paper's §V-A device characterization flow. The golden
// analytic MOSFET model is swept on a 0.1 V (Vg, Vs) grid and compressed
// into seven fitted parameters per point — a linear saturation fit and a
// quadratic triode fit split at Vdsat, plus the threshold (Fig. 8). This
// example reports the table size, the storage the compression saves versus
// a dense Vd-sampled table, and the fit quality at a representative
// operating point.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"qwm/internal/devmodel"
	"qwm/internal/mos"
)

func main() {
	tech := mos.CMOSP35()

	start := time.Now()
	tbl, err := devmodel.Characterize(&tech.N, tech, tech.LMin, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	entries := tbl.Entries()
	fmt.Printf("characterized NMOS @ L=%.2f µm: %d×%d grid (%d entries) in %v\n",
		tech.LMin*1e6, tbl.N, tbl.N, entries, elapsed)
	fmt.Printf("storage: %d floats (7 per entry) ≈ %.1f KiB\n",
		entries*7, float64(entries*7*8)/1024)
	dense := entries * 34 // a 0.1 V Vd sweep per (Vg, Vs) pair
	fmt.Printf("dense tabulation would need ≈ %d samples ≈ %.1f KiB (%.1f× more)\n",
		dense, float64(dense*8)/1024, float64(dense)/float64(entries*7))

	// Fit quality at full gate drive (the paper's Fig. 8 point).
	ana := devmodel.NewAnalytic(&tech.N, tech, tech.LMin)
	const vg, vs = 3.3, 0.0
	fmt.Printf("\nI/V fit at Vg=%.1f, Vs=%.1f (Vdsat = %.3f V):\n", vg, vs, tbl.Vdsat(vg, vs))
	fmt.Println("  Vds     golden(µA)   fitted(µA)   err%")
	worst := 0.0
	for vds := 0.1; vds <= 3.3; vds += 0.4 {
		ia, _, _, _ := ana.IV(1e-6, vg, vs+vds, vs)
		it, _, _, _ := tbl.IV(1e-6, vg, vs+vds, vs)
		e := 100 * math.Abs(it-ia) / ia
		if e > worst {
			worst = e
		}
		fmt.Printf("  %4.1f   %10.2f   %10.2f   %5.2f\n", vds, ia*1e6, it*1e6, e)
	}
	fmt.Printf("worst fit error on this curve: %.2f %%\n", worst)

	// Threshold and body effect straight from the table.
	fmt.Println("\nbody effect (threshold vs source voltage):")
	for _, v := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		fmt.Printf("  Vs=%.1f  Vth=%.3f V\n", v, tbl.Threshold(v))
	}
}
