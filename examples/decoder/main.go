// Decoder: the paper's Fig. 10 scenario. A memory decoder tree routes the
// discharge path through wires whose lengths grow exponentially with the
// tree level; each wire is first reduced to an AWE π macro-model
// (O'Brien/Savarino moment matching) and the resulting transistor+wire
// chain is evaluated by QWM. The example prints the π models, compares QWM
// against SPICE on the reduced network, and shows the Elmore (switch-level)
// estimate for contrast.
package main

import (
	"fmt"
	"log"

	"qwm/internal/awe"
	"qwm/internal/bench"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/stages"
	"qwm/internal/switchlevel"
)

func main() {
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		log.Fatal(err)
	}

	const levels = 4
	baseLen := 50e-6
	fmt.Printf("decoder tree: %d levels, level-k wire length = %.0f µm × 2^k\n",
		levels, baseLen*1e6)
	fmt.Println("\nAWE π macro-models of the wires:")
	for lvl := 0; lvl < levels; lvl++ {
		length := baseLen * float64(int(1)<<lvl)
		r, c := stages.DefaultWire.Totals(length)
		pi, err := awe.PiForWire(r, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  level %d: %4.0f µm  R=%6.1f Ω  C=%6.2f fF  →  π(%5.2f fF, %6.1f Ω, %5.2f fF)\n",
			lvl, length*1e6, r, c*1e15, pi.CNear*1e15, pi.R, pi.CFar*1e15)
	}

	w, err := stages.DecoderTree(tech, levels, 2e-6, baseLen, 20e-15, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npath: %d transistors + %d wires\n",
		w.Path.Transistors(), len(w.Path.Elems)-w.Path.Transistors())

	q, err := h.RunQWM(w, qwm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s, err := h.RunSpice(w, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	el, err := switchlevel.Delay(w, tech)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nQWM:          delay = %7.2f ps   (%v)\n", q.Delay*1e12, q.Runtime)
	fmt.Printf("SPICE (1ps):  delay = %7.2f ps   (%v)\n", s.Delay*1e12, s.Runtime)
	fmt.Printf("Elmore:       delay = %7.2f ps   (switch-level estimate)\n", el*1e12)
	fmt.Printf("\nQWM accuracy %.2f %%, speed-up %.0f×\n",
		100-100*abs(q.Delay-s.Delay)/s.Delay, float64(s.Runtime)/float64(q.Runtime))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
