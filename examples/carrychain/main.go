// Carry chain: the paper's Fig. 9 scenario. The worst path of a Manchester
// carry chain is a stack of six series NMOS transistors whose internal
// nodes are precharged; when the bottom input rises, a discharge wavefront
// propagates up the stack. This example evaluates that path with QWM and
// overlays the SPICE reference, printing the critical points QWM solved for
// and a sampled waveform table for the output node.
package main

import (
	"fmt"
	"log"

	"qwm/internal/bench"
	"qwm/internal/mos"
	"qwm/internal/qwm"
	"qwm/internal/spice"
	"qwm/internal/stages"
)

func main() {
	tech := mos.CMOSP35()
	h, err := bench.NewHarness(tech)
	if err != nil {
		log.Fatal(err)
	}
	w, err := stages.CarryChainStack(tech)
	if err != nil {
		log.Fatal(err)
	}

	// QWM evaluation — the K critical points fall out of the analysis.
	ch, err := qwm.Build(qwm.BuildInput{
		Tech: tech, Lib: h.Lib, Stage: w.Stage, Path: w.Path,
		Inputs: w.Inputs, Loads: w.Loads, V0: w.IC,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := qwm.Evaluate(ch, qwm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6-NMOS carry-chain stack: %d regions, %d Newton iterations\n",
		res.Regions, res.NRIterations)
	fmt.Println("critical points (ps):")
	for i, t := range res.CriticalTimes {
		fmt.Printf("  τ%-2d = %7.2f\n", i, t*1e12)
	}

	// SPICE reference on the identical netlist and initial conditions.
	sim, err := spice.New(w.Netlist, tech, false)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := sim.Transient(spice.Options{TStop: 600e-12, Step: 1e-12, IC: w.IC})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sres.Waveform(w.Output)
	if err != nil {
		log.Fatal(err)
	}

	dq, err := res.Delay50(0, tech.VDD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQWM delay:   %.2f ps\n", dq*1e12)
	tc, _ := out.Crossing(tech.VDD/2, false)
	fmt.Printf("SPICE delay: %.2f ps\n", tc*1e12)
	fmt.Printf("accuracy:    %.2f %%\n", 100-100*abs(dq-tc)/tc)

	fmt.Println("\n t(ps)   QWM V(out)   SPICE V(out)")
	for t := 0.0; t <= 600e-12; t += 50e-12 {
		fmt.Printf("%6.0f   %10.3f   %12.3f\n", t*1e12, res.Output.Eval(t), out.Eval(t))
	}

	// The same analysis on the full Manchester carry chain circuit of paper
	// Fig. 2 — propagate/generate devices per bit slice plus clocked
	// precharge PMOS. Stage extraction finds the evaluation-phase worst path
	// (carry-in device + 5 propagate devices = the 6-stack above), with the
	// off generate/precharge devices loading the carry nodes.
	full, err := stages.ManchesterChain(tech, 5, 2e-6, 2e-6, 12e-15, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull Manchester chain (Fig. 2): %d devices in the stage, worst path K = %d\n",
		len(full.Stage.Edges), full.Path.Transistors())
	qf, err := h.RunQWM(full, qwm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sf, err := h.RunSpice(full, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QWM %.2f ps vs SPICE %.2f ps (accuracy %.2f %%, speed-up %.0f×)\n",
		qf.Delay*1e12, sf.Delay*1e12,
		100-100*abs(qf.Delay-sf.Delay)/sf.Delay,
		float64(sf.Runtime)/float64(qf.Runtime))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
