// Package qwm is a from-scratch Go reproduction of "Transistor-Level Static
// Timing Analysis by Piecewise Quadratic Waveform Matching" (Wang & Zhu,
// DATE 2003).
//
// The repository contains the paper's contribution — the QWM waveform
// evaluation engine (internal/qwm) — together with every substrate it needs
// and every baseline it is measured against: a golden analytic MOSFET model
// (internal/mos), the tabular characterized device model of §V-A
// (internal/devmodel), a SPICE-class Newton–Raphson transient simulator
// (internal/spice), RC interconnect reduction by AWE/moment matching
// (internal/awe), a successive-chord integration engine in the TETA family
// (internal/sc), a switch-level Elmore baseline (internal/switchlevel), the
// circuit/stage/path model of §III (internal/circuit), a SPICE-deck parser
// (internal/netlist), the paper's benchmark workloads (internal/stages) and
// the experiment harness that regenerates its tables and figures
// (internal/bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for measured paper-versus-reproduction numbers. The
// benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem
package qwm
